"""Property: ``gpu-map`` is byte-identical to sequential ``mapcar``.

The bulk path earns its keep on makespan, never on semantics: mapping a
function over a list through the parallel engine — or host-sharded
across a whole fleet — must produce the same printed bytes as the
sequential ``mapcar`` oracle, and binding the result must retain the
same heap (node for node, digest-identical snapshots). Pinned across gc
policies, jit on/off, async vs lockstep, and heterogeneous fleets, the
same matrix every prior differential suite runs under.

REPRO_TEST_FLEET overrides the default pool with a comma-separated
device list, so CI's tier legs re-run this module on other fleets
without duplicating the tests.
"""

from __future__ import annotations

import os

import pytest

from repro.serve import CuLiServer
from repro.runtime.snapshot import snapshot_env

_FLEET_ENV = os.environ.get("REPRO_TEST_FLEET", "")
DEVICES = (
    [name.strip() for name in _FLEET_ENV.split(",") if name.strip()]
    or ["gtx1080", "gtx1080", "tesla-m40"]
)
MIXED_FLEET = ["gtx1080", "tesla-v100", "intel-e5-2620"]

GC_POLICIES = ["generational", "full", "literal"]

FN = "(lambda (x) (+ (* x x) 3))"
DATA = list(range(40))
BODY = " ".join(str(x) for x in DATA)


def eval_in_session(text: str, **server_kwargs) -> str:
    server_kwargs.setdefault("devices", list(DEVICES))
    with CuLiServer(**server_kwargs) as server:
        return server.open_session().eval(text)


def mapcar_oracle(**server_kwargs) -> str:
    return eval_in_session(f"(mapcar {FN} ({BODY}))", **server_kwargs)


def gpu_map_single(**server_kwargs) -> str:
    """One ``gpu-map`` request through a tenant session (the builtin
    path: the device's own engine distributes, no host sharding)."""
    return eval_in_session(f"(gpu-map {FN} ({BODY}))", **server_kwargs)


def gpu_map_sharded(**server_kwargs) -> str:
    """The host-sharded fleet path (capability-weighted chunks)."""
    server_kwargs.setdefault("devices", list(DEVICES))
    with CuLiServer(**server_kwargs) as server:
        return server.gpu_map(FN, DATA, chunk_elems=8)


@pytest.mark.parametrize("gc_policy", GC_POLICIES)
def test_gpu_map_matches_mapcar_across_gc_policies(gc_policy):
    kwargs = (
        {"gc_policy": gc_policy}
        if gc_policy != "literal"
        else {"fast_path": False, "jit": False}
    )
    want = mapcar_oracle(**kwargs)
    assert gpu_map_single(**kwargs) == want
    assert gpu_map_sharded(**kwargs) == want


@pytest.mark.parametrize("jit", [False, True])
def test_gpu_map_matches_mapcar_with_and_without_jit(jit):
    want = mapcar_oracle(jit=jit)
    assert gpu_map_single(jit=jit) == want
    assert gpu_map_sharded(jit=jit) == want


@pytest.mark.parametrize("mode", ["lockstep", "async"])
def test_gpu_map_matches_mapcar_on_both_schedulers(mode):
    want = mapcar_oracle(scheduler=mode)
    assert gpu_map_single(scheduler=mode) == want
    assert gpu_map_sharded(scheduler=mode) == want


def test_gpu_map_matches_mapcar_on_a_mixed_fleet():
    want = mapcar_oracle(devices=list(MIXED_FLEET))
    assert gpu_map_single(devices=list(MIXED_FLEET)) == want
    assert gpu_map_sharded(devices=list(MIXED_FLEET)) == want


def test_full_matrix_single_value():
    """One fn/input pair swept through the whole matrix at once: every
    configuration must print the same bytes."""
    fn = "(lambda (x) (list x (* 2 x)))"
    body = " ".join(str(x) for x in range(12))
    outputs = set()
    for mode in ("lockstep", "async"):
        for jit in (False, True):
            with CuLiServer(
                devices=list(DEVICES), scheduler=mode, jit=jit
            ) as server:
                outputs.add(
                    server.open_session().eval(f"(mapcar {fn} ({body}))")
                )
                outputs.add(
                    server.open_session().eval(f"(gpu-map {fn} ({body}))")
                )
                outputs.add(server.gpu_map(fn, list(range(12))))
    assert len(outputs) == 1, outputs


@pytest.mark.parametrize("gc_policy", ["generational", "full"])
def test_retained_heap_is_identical(gc_policy):
    """Binding a gpu-map result retains exactly the heap a mapcar
    result retains: snapshot digests (canonical serialization of the
    reachable subgraph) and node counts match."""

    def retained(form: str):
        with CuLiServer(
            devices=list(DEVICES), gc_policy=gc_policy
        ) as server:
            session = server.open_session(name="probe")
            session.eval(f"(setq r ({form} {FN} ({BODY})))")
            snap = snapshot_env(session.env, label="probe")
            return snap.node_count, snap.digest()

    map_nodes, map_digest = retained("mapcar")
    bulk_nodes, bulk_digest = retained("gpu-map")
    assert bulk_nodes == map_nodes
    assert bulk_digest == map_digest


def test_retained_heap_identical_on_mixed_fleet():
    def retained(form: str):
        with CuLiServer(devices=list(MIXED_FLEET)) as server:
            session = server.open_session(name="probe")
            session.eval(f"(setq r ({form} {FN} ({BODY})))")
            return snapshot_env(session.env, label="probe").digest()

    assert retained("gpu-map") == retained("mapcar")
