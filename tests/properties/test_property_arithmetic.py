"""Property: CuLi integer arithmetic agrees with Python's (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import NullContext
from repro.core.interpreter import Interpreter

small_ints = st.integers(min_value=-(10**6), max_value=10**6)


def run(src: str) -> str:
    return Interpreter().process(src, NullContext())


@given(st.lists(small_ints, min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_sum_matches_python(values):
    expr = "(+ " + " ".join(str(v) for v in values) + ")"
    assert run(expr) == str(sum(values))


@given(st.lists(small_ints, min_size=1, max_size=6))
@settings(max_examples=150, deadline=None)
def test_sub_left_fold(values):
    expr = "(- " + " ".join(str(v) for v in values) + ")"
    if len(values) == 1:
        expected = -values[0]
    else:
        expected = values[0]
        for v in values[1:]:
            expected -= v
    assert run(expr) == str(expected)


@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=5))
@settings(max_examples=150, deadline=None)
def test_product_matches_python(values):
    expr = "(* " + " ".join(str(v) for v in values) + ")"
    expected = 1
    for v in values:
        expected *= v
    assert run(expr) == str(expected)


@given(small_ints, small_ints)
@settings(max_examples=150, deadline=None)
def test_comparison_chain(a, b):
    assert run(f"(< {a} {b})") == ("T" if a < b else "nil")
    assert run(f"(= {a} {b})") == ("T" if a == b else "nil")
    assert run(f"(>= {a} {b})") == ("T" if a >= b else "nil")


@given(small_ints, st.integers(min_value=1, max_value=1000))
@settings(max_examples=150, deadline=None)
def test_mod_sign_follows_divisor(a, b):
    assert run(f"(mod {a} {b})") == str(a % b)
    assert run(f"(mod {a} -{b})") == str(a % -b)


@given(st.lists(small_ints, min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_min_max_match_python(values):
    args = " ".join(str(v) for v in values)
    assert run(f"(min {args})") == str(min(values))
    assert run(f"(max {args})") == str(max(values))
