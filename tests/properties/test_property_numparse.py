"""Property: the device number parser agrees with Python's (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import NullContext
from repro.strlib import format_float, format_int, parse_number

CTX = NullContext()


@given(st.integers(min_value=-(2**40), max_value=2**40))
@settings(max_examples=300, deadline=None)
def test_integer_roundtrip(value):
    assert parse_number(str(value), CTX) == value


@given(st.floats(allow_nan=False, allow_infinity=False, width=32))
@settings(max_examples=300, deadline=None)
def test_float_format_parse_roundtrip(value):
    text = format_float(float(value), CTX)
    parsed = parse_number(text, CTX)
    assert isinstance(parsed, float)
    # The decimal-fraction accumulator is within float rounding of repr.
    if value == 0:
        assert parsed == 0
    else:
        assert abs(parsed - value) <= abs(value) * 1e-9


@given(st.integers(min_value=0, max_value=10**12))
@settings(max_examples=200, deadline=None)
def test_format_int_matches_str(value):
    assert format_int(value, CTX) == str(value)


@given(st.text(st.characters(codec="ascii"), max_size=10))
@settings(max_examples=300, deadline=None)
def test_parser_never_crashes_and_agrees_on_validity(text):
    """parse_number returns None exactly when Python cannot parse the
    token as a simple number either (no inf/nan/underscores/hex)."""
    result = parse_number(text, CTX)
    if result is not None:
        assert float(text) == float(result) or abs(float(text) - result) < 1e-6 * max(
            1.0, abs(result)
        )


@given(st.decimals(allow_nan=False, allow_infinity=False, places=6,
                   min_value=-10**9, max_value=10**9))
@settings(max_examples=300, deadline=None)
def test_decimal_strings(value):
    text = str(value)
    parsed = parse_number(text, CTX)
    assert parsed is not None
    assert abs(float(parsed) - float(value)) <= max(1.0, abs(float(value))) * 1e-12
