"""Shared fixtures for the test suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.context import CountingContext, NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.cpu.device import CPUDevice, CPUDeviceConfig
from repro.cpu.specs import AMD_6272, INTEL_E5_2620
from repro.gpu.device import GPUDevice, GPUDeviceConfig
from repro.gpu.specs import GTX480, GPUSpec
from repro.runtime.fidelity import Fidelity


@pytest.fixture
def ctx():
    """Charging disabled — pure semantics."""
    return NullContext()


@pytest.fixture
def counting_ctx():
    return CountingContext(max_depth=1024)


@pytest.fixture
def interp():
    return Interpreter()


@pytest.fixture
def run(interp, ctx):
    """Evaluate CuLi source on a bare interpreter, return the output."""

    def _run(source: str) -> str:
        return interp.process(source, ctx)

    return _run


def make_tiny_gpu_spec(**overrides) -> GPUSpec:
    """A small GPU (few workers) so round/livelock tests are cheap.

    Defaults: 2 SMs x 2 blocks x 32 threads = 4 blocks, 96 workers.
    """
    params = dict(
        name="tiny-gpu",
        sm_count=2,
        max_blocks_per_sm=2,
    )
    params.update(overrides)
    return dataclasses.replace(GTX480, **params)


@pytest.fixture
def tiny_gpu_spec():
    return make_tiny_gpu_spec()


@pytest.fixture
def tiny_gpu(tiny_gpu_spec):
    device = GPUDevice(tiny_gpu_spec)
    yield device
    device.close()


@pytest.fixture
def gpu_device():
    """A real-spec GPU device (GTX 480: modest postbox count)."""
    device = GPUDevice(GTX480)
    yield device
    device.close()


@pytest.fixture
def cpu_device():
    device = CPUDevice(INTEL_E5_2620)
    yield device
    device.close()


@pytest.fixture
def amd_device():
    device = CPUDevice(AMD_6272)
    yield device
    device.close()


@pytest.fixture
def full_fidelity_gpu(tiny_gpu_spec):
    device = GPUDevice(tiny_gpu_spec, config=GPUDeviceConfig(fidelity=Fidelity.FULL))
    yield device
    device.close()
