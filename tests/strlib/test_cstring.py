"""C-style string routines with charging."""

import pytest

from repro.context import CountingContext, NullContext
from repro.ops import Op
from repro.strlib import str_cmp, str_copy_into, str_equal, str_len, str_ncmp


@pytest.fixture
def ctx():
    return NullContext()


class TestStrCmp:
    @pytest.mark.parametrize(
        "a,b,sign",
        [
            ("abc", "abc", 0),
            ("abc", "abd", -1),
            ("abd", "abc", 1),
            ("ab", "abc", -1),
            ("abc", "ab", 1),
            ("", "", 0),
            ("", "a", -1),
        ],
    )
    def test_sign(self, ctx, a, b, sign):
        result = str_cmp(a, b, ctx)
        assert (result > 0) - (result < 0) == sign

    def test_charges_up_to_first_difference(self):
        cctx = CountingContext()
        str_cmp("aaax", "aaay", cctx)
        # 3 equal pairs + the differing position
        assert cctx.counts.count_of(Op.SYM_CHAR_CMP) == 4

    def test_mismatch_at_first_char_is_cheap(self):
        cctx = CountingContext()
        str_cmp("x" + "a" * 100, "y" + "a" * 100, cctx)
        assert cctx.counts.count_of(Op.SYM_CHAR_CMP) == 1

    def test_equal_strings_charge_full_length(self):
        cctx = CountingContext()
        str_cmp("hello", "hello", cctx)
        assert cctx.counts.count_of(Op.SYM_CHAR_CMP) == 6  # 5 + terminator


class TestOthers:
    def test_str_len_counts_terminator(self):
        cctx = CountingContext()
        assert str_len("abcd", cctx) == 4
        assert cctx.counts.count_of(Op.CHAR_LOAD) == 5

    def test_str_ncmp(self, ctx):
        assert str_ncmp("abcdef", "abcxyz", 3, ctx) == 0
        assert str_ncmp("abcdef", "abcxyz", 4, ctx) < 0

    def test_str_equal(self, ctx):
        assert str_equal("same", "same", ctx)
        assert not str_equal("same", "sane", ctx)

    def test_str_copy_into(self):
        cctx = CountingContext()
        dst: list[str] = []
        str_copy_into(dst, "hi", cctx)
        assert dst == ["h", "i"]
        assert cctx.counts.count_of(Op.CHAR_STORE) == 3  # 2 + terminator
