"""Atom classification and number parsing (the paper's §III-B-b rules)."""

import pytest

from repro.context import NullContext
from repro.strlib import AtomClass, classify_atom, looks_numeric, parse_number


@pytest.fixture
def ctx():
    return NullContext()


class TestLooksNumeric:
    @pytest.mark.parametrize("tok", ["1", "42", "+1", "-3", ".5", "E2", "9abc"])
    def test_numeric_start(self, tok):
        assert looks_numeric(tok)

    @pytest.mark.parametrize("tok", ["abc", "*", "", "x1"])
    def test_non_numeric_start(self, tok):
        assert not looks_numeric(tok)


class TestParseNumber:
    @pytest.mark.parametrize(
        "tok,value",
        [
            ("0", 0),
            ("42", 42),
            ("-17", -17),
            ("+5", 5),
            ("007", 7),
        ],
    )
    def test_integers(self, ctx, tok, value):
        result = parse_number(tok, ctx)
        assert result == value and isinstance(result, int)

    @pytest.mark.parametrize(
        "tok,value",
        [
            ("2.5", 2.5),
            ("-0.25", -0.25),
            (".5", 0.5),
            ("3.", 3.0),
            ("2E3", 2000.0),
            ("2e-2", 0.02),
            ("1.5e2", 150.0),
            ("-1.5E+1", -15.0),
        ],
    )
    def test_floats(self, ctx, tok, value):
        result = parse_number(tok, ctx)
        assert result == pytest.approx(value) and isinstance(result, float)

    @pytest.mark.parametrize(
        "tok", ["+", "-", ".", "E", "e5", "1.2.3", "12abc", "--3", "1e", ""]
    )
    def test_non_numbers(self, ctx, tok):
        assert parse_number(tok, ctx) is None


class TestClassifyAtom:
    @pytest.mark.parametrize(
        "tok,cls",
        [
            ('"txt"', AtomClass.STRING),
            ("nil", AtomClass.NIL),
            ("T", AtomClass.TRUE),
            ("t", AtomClass.TRUE),
            ("12", AtomClass.INT),
            ("1.5", AtomClass.FLOAT),
            ("2E1", AtomClass.FLOAT),
            ("+", AtomClass.SYMBOL),
            ("foo", AtomClass.SYMBOL),
            ("|||", AtomClass.SYMBOL),
        ],
    )
    def test_classes(self, ctx, tok, cls):
        got, _value = classify_atom(tok, ctx)
        assert got is cls

    def test_string_value_strips_quotes(self, ctx):
        _cls, value = classify_atom('"hello"', ctx)
        assert value == "hello"

    def test_nil_like_symbol(self, ctx):
        got, _ = classify_atom("nill", ctx)
        assert got is AtomClass.SYMBOL
