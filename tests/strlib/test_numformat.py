"""Number formatting (device itoa/ftoa)."""

import pytest

from repro.context import CountingContext, NullContext
from repro.ops import Op
from repro.strlib import format_float, format_int, parse_number


@pytest.fixture
def ctx():
    return NullContext()


class TestFormatInt:
    @pytest.mark.parametrize("value", [0, 7, 42, -1, 123456, -98765])
    def test_matches_repr(self, ctx, value):
        assert format_int(value, ctx) == str(value)

    def test_idiv_per_digit(self):
        cctx = CountingContext()
        format_int(12345, cctx)
        assert cctx.counts.count_of(Op.IDIV) == 5

    def test_negative_charges_extra_negate(self):
        pos, neg = CountingContext(), CountingContext()
        format_int(123, pos)
        format_int(-123, neg)
        assert neg.counts.count_of(Op.ALU) == pos.counts.count_of(Op.ALU) + 1


class TestFormatFloat:
    @pytest.mark.parametrize("value", [2.5, -0.25, 1e30, 2.0, 1234.5678])
    def test_reparses_as_float(self, ctx, value):
        text = format_float(value, ctx)
        back = parse_number(text, ctx)
        assert isinstance(back, float)
        assert back == pytest.approx(value)

    def test_whole_float_keeps_marker(self, ctx):
        assert format_float(2.0, ctx) == "2.0"

    def test_special_values(self, ctx):
        assert format_float(float("nan"), ctx) == "nan"
        assert format_float(float("inf"), ctx) == "inf"
        assert format_float(float("-inf"), ctx) == "-inf"
