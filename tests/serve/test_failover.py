"""Device-loss failover: watchdog, checkpoint recovery, circuit breaker,
probe-based return to service, and the availability stats surface.

The invariant under test everywhere: **no request is ever lost**. Every
ticket a tenant enqueued resolves exactly once — normally, or (for a
poisonous / unrecoverable request) with an error — no matter which
devices crash, hang, or flap, and co-tenants on surviving devices see
bytes identical to a run where the loss never happened.
"""

from __future__ import annotations

import pytest

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDeviceConfig
from repro.errors import DeviceHangError, DeviceLostError, is_device_loss
from repro.gpu.device import GPUDeviceConfig
from repro.serve import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    CuLiServer,
)

DEVICE = "gtx1080"


def failover_server(**kwargs) -> CuLiServer:
    kwargs.setdefault("devices", [DEVICE, DEVICE])
    kwargs.setdefault("failover", True)
    kwargs.setdefault("checkpoint_interval", 2)
    return CuLiServer(**kwargs)


def fault_failover_server(**kwargs) -> CuLiServer:
    opts = InterpreterOptions.fast(enable_fault_injection=True)
    kwargs.setdefault("gpu_config", GPUDeviceConfig(interpreter=opts))
    kwargs.setdefault("cpu_config", CPUDeviceConfig(interpreter=opts))
    return failover_server(**kwargs)


class TestErrorClassification:
    def test_device_loss_is_never_containable(self):
        assert is_device_loss(DeviceLostError("x"))
        assert is_device_loss(DeviceHangError("x"))
        assert not DeviceLostError("x").containable
        assert not is_device_loss(ValueError("x"))

    def test_hang_is_a_loss(self):
        assert isinstance(DeviceHangError("x"), DeviceLostError)


class TestKillRecovery:
    def test_checkpointed_session_survives_a_kill(self):
        with failover_server() as server:
            session = server.open_session()
            session.eval("(defun f (x) (* x x))")
            session.eval("(setq n 10)")       # checkpoint fires here (N=2)
            session.eval("(setq n (+ n 1))")  # suffix: 1 round past checkpoint
            lost = session.device_id
            server.supervisor.kill_device(lost, "test kill")
            assert session.device_id != lost
            assert session.eval("n") == "11"
            assert session.eval("(f 4)") == "16"
            assert server.stats.devices_lost == 1
            assert server.stats.sessions_recovered == 1
            assert server.stats.rpo_rounds_max <= 2

    def test_fresh_session_recovers_by_full_replay(self):
        """Before the first checkpoint the suffix *is* the session: a
        fresh root plus replay reproduces everything."""
        with failover_server(checkpoint_interval=50) as server:
            session = server.open_session()
            session.eval("(setq x 7)")
            assert server.supervisor.store.get(session.session_id) is None
            server.supervisor.kill_device(session.device_id, "test kill")
            assert session.eval("x") == "7"
            assert server.stats.requests_replayed == 1

    def test_queued_tickets_survive_in_order(self):
        with failover_server() as server:
            session = server.open_session()
            session.eval("(setq n 0)")
            session.eval("(setq n (+ n 1))")
            tickets = [session.submit("(setq n (+ n 10))") for _ in range(3)]
            server.supervisor.kill_device(session.device_id, "queued kill")
            server.flush()
            assert [t.output for t in tickets] == ["11", "21", "31"]
            assert server.pending == 0

    def test_hang_is_counted_and_recovers(self):
        with failover_server() as server:
            session = server.open_session()
            session.eval("(setq x 3)")
            session.eval("(setq y 4)")
            server.supervisor.kill_device(
                session.device_id, "watchdog timeout", hang=True
            )
            assert session.eval("(+ x y)") == "7"
            assert server.stats.device_hangs == 1
            assert server.stats.devices_lost == 1

    def test_restore_charges_the_destination_link(self):
        with failover_server() as server:
            session = server.open_session()
            session.eval("(setq big (list 1 2 3 4 5 6 7 8))")
            session.eval("big")
            server.supervisor.kill_device(session.device_id, "test kill")
            session.eval("(car big)")
            assert server.stats.failover_restore_bytes > 0
            assert server.stats.failover_restore_ms > 0.0

    def test_stats_balance_holds_through_losses(self):
        with failover_server() as server:
            sessions = [server.open_session() for _ in range(4)]
            for i, s in enumerate(sessions):
                s.submit(f"(setq n {i})")
            server.flush()
            server.supervisor.kill_device(sessions[0].device_id, "kill")
            for s in sessions:
                s.submit("(setq n (+ n 1))")
            server.flush()
            st = server.stats
            assert server.pending == 0
            assert st.requests_enqueued == (
                st.requests_completed + st.requests_cancelled
            )


class TestInjectedDeviceLoss:
    """Satellite: ``(inject-fault "device-lost"/"device-hang")`` makes
    whole-device chaos scriptable from Lisp programs."""

    def test_injected_loss_triggers_failover_and_poisons_the_injector(self):
        with fault_failover_server(
            devices=[DEVICE],
            failover_config={"max_ticket_failovers": 2, "breaker_failures": 99},
        ) as server:
            injector = server.open_session("injector")
            bystander = server.open_session("bystander")
            bystander.submit("(setq safe 1)")
            bad = injector.submit('(inject-fault "device-lost")')
            ok = bystander.submit("(+ safe 41)")
            server.flush()
            assert server.pending == 0
            # The injector's request kills every device it runs on: after
            # the per-ticket failover cap it resolves as poisoned.
            assert isinstance(bad.error, DeviceLostError)
            assert ok.output == "42"
            assert server.stats.devices_lost >= 1
            assert server.stats.poisoned_requests == 1

    def test_injected_hang_counts_as_hang(self):
        with fault_failover_server(
            devices=[DEVICE],
            failover_config={"max_ticket_failovers": 1, "breaker_failures": 99},
        ) as server:
            session = server.open_session()
            ticket = session.submit('(inject-fault "device-hang")')
            server.flush()
            assert isinstance(ticket.error, DeviceLostError)
            assert server.stats.device_hangs >= 1

    def test_without_supervisor_loss_degrades_to_quarantine(self):
        """No failover configured: a device-loss error follows the old
        batch-fatal quarantine path and the server keeps serving."""
        opts = InterpreterOptions.fast(enable_fault_injection=True)
        with CuLiServer(
            devices=[DEVICE], gpu_config=GPUDeviceConfig(interpreter=opts)
        ) as server:
            session = server.open_session()
            other = server.open_session()
            bad = session.submit('(inject-fault "device-lost")')
            good = other.submit("(+ 1 2)")
            server.flush()
            assert server.pending == 0
            assert isinstance(bad.error, DeviceLostError)
            assert good.output == "3"
            assert server.stats.devices_lost == 0  # no supervisor counting
            assert other.eval("(+ 2 2)") == "4"


class TestCircuitBreakerUnit:
    def test_opens_after_k_failures_in_window(self):
        brk = CircuitBreaker(failures=2, window=4, cooldown=2)
        assert brk.record_failure(1) == BREAKER_CLOSED
        assert brk.record_failure(2) == BREAKER_OPEN
        assert brk.opens == 1

    def test_window_expiry_forgives_old_failures(self):
        brk = CircuitBreaker(failures=2, window=3, cooldown=1)
        brk.record_failure(1)
        assert brk.record_failure(10) == BREAKER_CLOSED  # round 1 aged out

    def test_cooldown_then_half_open_then_close(self):
        brk = CircuitBreaker(failures=1, window=4, cooldown=2)
        brk.record_failure(1)
        assert brk.state == BREAKER_OPEN
        brk.tick()
        assert brk.state == BREAKER_OPEN
        brk.tick()
        assert brk.state == BREAKER_HALF_OPEN
        brk.on_probe_success()
        assert brk.state == BREAKER_CLOSED
        assert brk.flaps == 0

    def test_half_open_failure_is_a_flap(self):
        brk = CircuitBreaker(failures=1, window=4, cooldown=1, max_flaps=2)
        brk.record_failure(1)
        brk.tick()
        assert brk.state == BREAKER_HALF_OPEN
        brk.record_failure(2)
        assert brk.state == BREAKER_OPEN
        assert brk.flaps == 1 and not brk.flapping
        brk.tick()
        brk.record_failure(3)
        assert brk.flapping

    def test_trip_forces_open(self):
        brk = CircuitBreaker(cooldown=1)
        brk.trip()
        assert brk.state == BREAKER_OPEN
        brk.trip()  # idempotent while not CLOSED
        assert brk.opens == 1


class TestBreakerIntegration:
    def test_repeated_losses_open_then_probe_closes(self):
        with failover_server(
            failover_config={
                "breaker_failures": 2,
                "breaker_window": 50,
                "cooldown_rounds": 1,
            }
        ) as server:
            a = server.open_session("a")  # -> #0
            b = server.open_session("b")  # -> #1
            a.eval("(setq x 1)")
            dev = a.device_id
            supervisor = server.supervisor
            supervisor.kill_device(dev, "first")
            assert supervisor.breaker(dev).state == BREAKER_CLOSED
            supervisor.kill_device(dev, "second")
            assert supervisor.breaker(dev).state == BREAKER_OPEN
            assert server.pool[dev].draining
            assert server.stats.breaker_opens == 1
            # Keep traffic flowing: cooldown ticks between rounds, the
            # half-open probe runs, and the device returns to service.
            for i in range(4):
                b.eval(f"(setq y {i})")
            assert supervisor.breaker(dev).state == BREAKER_CLOSED
            assert not server.pool[dev].draining
            assert server.stats.probes_ok >= 1
            assert a.eval("x") == "1"

    def test_flapping_device_is_evicted(self):
        with failover_server(
            failover_config={
                "breaker_failures": 1,
                "cooldown_rounds": 1,
                "max_flaps": 1,
            }
        ) as server:
            a = server.open_session("a")
            b = server.open_session("b")
            a.eval("(setq x 5)")
            dev = a.device_id
            server.supervisor.kill_device(dev, "first")
            assert server.pool[dev].draining
            # Sabotage the revived device so the half-open probe fails:
            # one flap at max_flaps=1 means permanent eviction.
            server.pool[dev].device.mark_lost("still broken")
            for i in range(4):
                b.eval(f"(setq y {i})")
            assert dev not in server.pool.devices
            assert server.stats.devices_evicted == 1
            # The fleet still serves, sessions intact on the survivor.
            assert a.eval("x") == "5"
            assert a.device_id != dev

    def test_last_device_is_never_evicted(self):
        with failover_server(
            devices=[DEVICE],
            failover_config={
                "breaker_failures": 1,
                "cooldown_rounds": 1,
                "max_flaps": 1,
            },
        ) as server:
            session = server.open_session()
            session.eval("(setq x 1)")
            server.supervisor.kill_device(session.device_id, "kill")
            assert len(server.pool.devices) == 1
            assert session.eval("x") == "1"


class TestDrainingAutoRecovery:
    """Satellite (regression): a Rebalancer fault-drained device used to
    stay out of service until a manual ``reset_device`` call; the
    breaker's half-open probe now brings it back automatically."""

    def test_fault_drained_device_returns_via_probe(self):
        with fault_failover_server(
            rebalance=True,
            failover_config={"cooldown_rounds": 1},
        ) as server:
            faulty = server.open_session("faulty")   # -> #0
            steady = server.open_session("steady")   # -> #1
            dev = faulty.device_id
            # Three contained faults trip the rebalancer's drain policy.
            for _ in range(3):
                faulty.eval('(inject-fault "arena-exhausted")')
            assert server.pool[dev].draining
            assert server.stats.devices_drained == 1
            # No reset_device call: traffic alone must bring it back
            # (breaker trip -> cooldown -> probe -> close).
            for i in range(4):
                steady.eval(f"(setq y {i})")
            assert not server.pool[dev].draining
            assert server.supervisor.breaker(dev).state == BREAKER_CLOSED
            assert server.stats.probes_ok >= 1
            # Placement uses it again: a new session can land there.
            extra = server.open_session("extra")
            assert extra.device_id == dev

    def test_drained_device_stays_out_until_probe_passes(self):
        with fault_failover_server(
            rebalance=True,
            failover_config={"cooldown_rounds": 3},
        ) as server:
            faulty = server.open_session("faulty")
            steady = server.open_session("steady")
            dev = faulty.device_id
            for _ in range(3):
                faulty.eval('(inject-fault "arena-exhausted")')
            assert server.pool[dev].draining
            steady.eval("(setq y 0)")  # one round: still cooling down
            assert server.pool[dev].draining


class TestPostKillReleveling:
    """Failover dumps every victim on the survivors; the Rebalancer's
    session-leveling rule must spread them back across the revived
    device within its per-round move budget."""

    def test_sessions_re_level_after_a_kill(self):
        with failover_server(rebalance=True) as server:
            sessions = [server.open_session(f"t{i}") for i in range(4)]
            for i, s in enumerate(sessions):
                s.eval(f"(setq n {i})")
            victim_dev = sessions[0].device_id
            server.supervisor.kill_device(victim_dev, "kill")
            survivor = next(
                d for d in server.pool.devices if d != victim_dev
            )
            assert server.pool[survivor].session_count == 4
            # A couple of traffic rounds: leveling moves sessions back.
            for r in range(3):
                for s in sessions:
                    s.eval(f"(setq n (+ n {r}))")
            counts = sorted(
                p.session_count for p in server.pool.devices.values()
            )
            assert counts == [2, 2]
            assert server.stats.sessions_migrated >= 2

    def test_no_leveling_moves_on_an_even_pool(self):
        with failover_server(rebalance=True) as server:
            sessions = [server.open_session(f"t{i}") for i in range(4)]
            for r in range(3):
                for s in sessions:
                    s.eval(f"(setq x {r})")
            assert server.stats.sessions_migrated == 0


class TestCoTenantIsolation:
    def test_survivor_outputs_byte_identical_to_undisturbed_run(self):
        script = [
            "(defun g (x) (+ x 2))",
            "(setq acc (list 1 2 3))",
            "(g 40)",
            "(cons 0 acc)",
        ]

        def run(kill: bool) -> tuple[list[str], list[str]]:
            with failover_server() as server:
                a = server.open_session("a")  # -> #0 (killed)
                b = server.open_session("b")  # -> #1 (survivor)
                outs_a, outs_b = [], []
                for step, command in enumerate(script):
                    outs_a.append(a.eval(command))
                    outs_b.append(b.eval(command))
                    if kill and step == 1:
                        server.supervisor.kill_device(a.device_id, "mid-script")
                return outs_a, outs_b

        disturbed_a, disturbed_b = run(kill=True)
        quiet_a, quiet_b = run(kill=False)
        assert disturbed_b == quiet_b   # survivor: byte-identical
        assert disturbed_a == quiet_a   # victim: replay reconverges exactly

    def test_victim_history_has_no_replay_entries(self):
        """Replay re-executions are internal: the tenant's history shows
        each command exactly once."""
        with failover_server() as server:
            session = server.open_session()
            commands = [f"(setq x {i})" for i in range(5)]
            for command in commands:
                session.eval(command)
            server.supervisor.kill_device(session.device_id, "kill")
            session.eval("x")
            assert len(session.history) == 6  # 5 commands + final read


class TestAvailabilityStats:
    def test_snapshot_and_render_carry_the_failover_section(self):
        with failover_server() as server:
            session = server.open_session()
            session.eval("(setq x 1)")
            session.eval("(setq y 2)")
            server.supervisor.kill_device(session.device_id, "kill")
            session.eval("(+ x y)")
            snap = server.stats.snapshot()
            fo = snap["failover"]
            assert fo["devices_lost"] == 1
            assert fo["sessions_recovered"] == 1
            assert fo["rpo_max_rounds"] <= 2
            assert fo["checkpoints_shipped"] >= 1
            assert set(fo["breaker_states"]) == set(server.pool.devices)
            for d in snap["devices"].values():
                assert 0.0 <= d["uptime"] <= 1.0
            rendered = server.stats.render()
            assert "failover:" in rendered
            assert "sessions recovered" in rendered
            assert "breaker" in rendered
            assert "up " in rendered

    def test_uptime_dips_while_breaker_open(self):
        with failover_server(
            failover_config={"breaker_failures": 1, "cooldown_rounds": 2}
        ) as server:
            a = server.open_session("a")
            b = server.open_session("b")
            a.eval("(setq x 1)")
            dev = a.device_id
            server.supervisor.kill_device(dev, "kill")  # opens immediately
            for i in range(6):
                b.eval(f"(setq y {i})")
            dstats = server.stats.per_device[dev]
            assert dstats.rounds_total > 0
            assert dstats.uptime < 1.0
            assert dstats.losses == 1
