"""Scheduler: batch formation, fairness, per-session ordering."""

import pytest

from repro.serve.server import CuLiServer


@pytest.fixture
def server():
    srv = CuLiServer(devices=["gtx480"], max_batch=8)
    yield srv
    srv.close()


class TestBatchFormation:
    def test_one_request_per_session_per_batch(self, server):
        sess = server.open_session()
        for i in range(3):
            sess.submit(f"(+ {i} {i})")
        pdev = server.pool[sess.device_id]
        batch = server.scheduler.form_batch(pdev)
        assert len(batch) == 1  # same session: later commands defer
        assert pdev.queue_depth == 2

    def test_distinct_sessions_share_a_batch(self, server):
        sessions = [server.open_session() for _ in range(5)]
        for s in sessions:
            s.submit("(+ 1 1)")
        pdev = server.pool[sessions[0].device_id]
        batch = server.scheduler.form_batch(pdev)
        assert len(batch) == 5

    def test_max_batch_respected(self):
        server = CuLiServer(devices=["gtx480"], max_batch=3)
        sessions = [server.open_session() for _ in range(5)]
        for s in sessions:
            s.submit("1")
        pdev = server.pool[sessions[0].device_id]
        assert len(server.scheduler.form_batch(pdev)) == 3
        assert pdev.queue_depth == 2
        server.close()

    def test_deferred_requests_keep_fifo_order(self, server):
        a = server.open_session()
        b = server.open_session()
        a.submit("1")
        a.submit("2")
        a.submit("3")
        b.submit("4")
        pdev = server.pool[a.device_id]
        batch = server.scheduler.form_batch(pdev)
        assert [t.text for t in batch] == ["1", "4"]
        # a's remaining commands still in submission order at the front
        assert [t.text for t in pdev.queue] == ["2", "3"]

    def test_fairness_flooding_session_gets_one_slot(self, server):
        flooder = server.open_session()
        victim = server.open_session()
        for i in range(10):
            flooder.submit(f"{i}")
        victim.submit("(+ 40 2)")
        pdev = server.pool[flooder.device_id]
        batch = server.scheduler.form_batch(pdev)
        by_session = [t.session.session_id for t in batch]
        assert by_session.count(flooder.session_id) == 1
        assert by_session.count(victim.session_id) == 1


class TestOrdering:
    def test_session_commands_execute_in_order(self, server):
        sess = server.open_session()
        sess.submit("(setq acc 1)")
        sess.submit("(setq acc (* acc 10))")
        sess.submit("(setq acc (+ acc 2))")
        server.flush()
        assert sess.eval("acc") == "12"

    def test_drain_runs_one_batch_per_pass(self, server):
        sess = server.open_session()
        for i in range(4):
            sess.submit(f"{i}")
        batches = server.flush()
        assert batches == 4  # one command per batch for a single session
        assert [s.output for s in sess.history] == ["0", "1", "2", "3"]


class TestDispatchAccounting:
    def test_tickets_resolved_and_history_appended(self, server):
        sessions = [server.open_session() for _ in range(3)]
        tickets = [s.submit("(* 2 21)") for s in sessions]
        assert all(not t.done for t in tickets)
        server.flush()
        assert all(t.done and t.ok for t in tickets)
        assert [t.output for t in tickets] == ["42", "42", "42"]
        assert all(len(s.history) == 1 for s in sessions)

    def test_unflushed_ticket_output_raises(self, server):
        sess = server.open_session()
        ticket = sess.submit("1")
        with pytest.raises(RuntimeError):
            _ = ticket.output
        server.flush()
        assert ticket.output == "1"
