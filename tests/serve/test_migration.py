"""Live session migration: correctness, isolation, fault-drain, and
whole-fleet persistence.

The differential core: migrating a session between devices must be
invisible in every tenant's outputs — the migrated session *and* the
co-tenants on both the source and the destination device stay
byte-identical to solo runs — and must leave no heap behind on the
source arena. The rebalancer's fault-drain policy evacuates a device
hitting repeated containable faults, and ``CuLiServer.save``/``restore``
carry the whole fleet's tenant state across a server restart.
"""

from __future__ import annotations

import json

import pytest

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDeviceConfig
from repro.errors import ArenaExhaustedError
from repro.gpu.device import GPUDeviceConfig
from repro.serve import CuLiServer, Rebalancer

DEVICE = "gtx1080"


def solo_outputs(commands, **server_kwargs):
    """The commands run on a private, never-migrated single-device server."""
    server_kwargs.setdefault("devices", [DEVICE])
    with CuLiServer(**server_kwargs) as server:
        session = server.open_session()
        return [session.eval(command) for command in commands]


def session_script(tag: str) -> list[str]:
    return [
        f"(defun f-{tag} (x) (+ x {len(tag)}))",
        f"(setq state-{tag} (list 1 2 {len(tag)}))",
        f"(f-{tag} 10)",
        f"(cons 0 state-{tag})",
    ]


class TestExplicitMigration:
    def test_migrated_session_continues_correctly(self):
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.eval("(defun inc (x) (+ x 1))")
            source = session.device_id
            record = session.migrate()
            assert record.source == source
            assert record.dest == session.device_id != source
            assert record.nodes > 0 and record.nbytes > 0
            assert session.eval("(inc 41)") == "42"

    @pytest.mark.parametrize("gc_policy", ["generational", "full"])
    def test_co_tenants_byte_identical_to_solo_runs(self, gc_policy):
        """Tenants on the source and the destination device observe the
        same bytes before and after a migration as they would alone."""
        scripts = {tag: session_script(tag) for tag in ("aa", "bbb", "cccc")}
        outputs = {tag: [] for tag in scripts}
        with CuLiServer(devices=[DEVICE, DEVICE], gc_policy=gc_policy) as server:
            # Deterministic placement: aa -> #0, bbb -> #1, cccc -> #0.
            sessions = {tag: server.open_session(tag) for tag in scripts}
            for step in range(2):  # first half of each script
                for tag, session in sessions.items():
                    outputs[tag].append(session.eval(scripts[tag][step]))
            migrated = sessions["aa"]
            peer = sessions["bbb"]
            record = migrated.migrate(peer.device_id)
            assert migrated.device_id == peer.device_id
            for step in range(2, 4):  # second half, post-migration
                for tag, session in sessions.items():
                    outputs[tag].append(session.eval(scripts[tag][step]))
        for tag, script in scripts.items():
            assert outputs[tag] == solo_outputs(script, gc_policy=gc_policy), tag

    def test_queued_tickets_travel_with_the_session(self):
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.submit("(defun add2 (x) (+ x 2))")
            t1 = session.submit("(add2 1)")
            t2 = session.submit("(add2 2)")
            source = server.pool[session.device_id]
            session.migrate()
            dest = server.pool[session.device_id]
            assert source.queue_depth == 0
            assert dest.queue_depth == 3  # submission order preserved
            server.flush()
            assert t1.output == "3" and t2.output == "4"
            assert server.stats.per_device[dest.device_id].requests == 3
            assert server.stats.per_device[source.device_id].requests == 0

    @pytest.mark.parametrize("gc_policy", ["generational", "full"])
    def test_source_arena_fully_reclaimed(self, gc_policy):
        """No arena leak: after a session migrates away, the source
        device's nursery *and* tenured nodes for it are all freed."""
        with CuLiServer(devices=[DEVICE, DEVICE], gc_policy=gc_policy) as server:
            source = server.pool[f"{DEVICE}#0"]
            baseline = source.device.interp.arena.used
            session = server.open_session()
            assert session.device_id == source.device_id
            for command in session_script("leaky"):
                session.eval(command)
            assert source.device.interp.arena.used > baseline
            session.migrate()
            assert source.device.interp.arena.used == baseline
            assert session.eval("(f-leaky 1)") == "6"

    def test_explicit_target_and_bad_targets(self):
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            here = session.device_id
            with pytest.raises(ValueError):
                session.migrate(here)
            other = next(
                device_id for device_id in server.pool.devices if device_id != here
            )
            record = session.migrate(other)
            assert record.dest == other == session.device_id

    def test_closed_session_cannot_migrate(self):
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.close()
            with pytest.raises(RuntimeError):
                session.migrate()

    def test_single_device_pool_refuses_self_migration(self):
        """With nowhere else to go, the default-placement path must
        refuse (like the explicit path), not silently self-migrate and
        charge phantom transfer."""
        with CuLiServer(devices=[DEVICE]) as server:
            session = server.open_session()
            session.eval("(setq v 1)")
            with pytest.raises(ValueError):
                session.migrate()
            assert server.stats.sessions_migrated == 0
            assert server.pool[session.device_id].session_count == 1
            assert session.eval("v") == "1"

    def test_failed_restore_leaves_source_intact(self):
        """An arena-exhausted destination aborts the migration with the
        session still healthy (and still placed) on its source."""
        opts = InterpreterOptions.fast(arena_capacity=2000)
        with CuLiServer(
            devices=[DEVICE, DEVICE],
            gpu_config=GPUDeviceConfig(interpreter=opts),
            cpu_config=CPUDeviceConfig(interpreter=opts),
        ) as server:
            hog = server.open_session("hog")        # -> #0
            mover = server.open_session("mover")    # -> #1
            # Retained state accumulates over several commands (a single
            # command large enough to fill the arena would exhaust it
            # during its own evaluation and roll back instead).
            for k in range(2):
                mover.eval(f"(setq keep-{k} (list " + "7 " * 350 + "))")
            for k in range(4):
                hog.eval(f"(setq fat-{k} (list " + "1 " * 350 + "))")
            source = mover.device_id
            sessions_before = server.pool[hog.device_id].session_count
            with pytest.raises(ArenaExhaustedError):
                mover.migrate(hog.device_id)
            assert mover.device_id == source
            assert server.pool[hog.device_id].session_count == sessions_before
            assert mover.eval("(length keep-0)") == "350"


class TestFaultDrain:
    """A device hitting repeated containable faults gets drained: its
    sessions migrate off and the queue ends empty."""

    def make_server(self, **kwargs):
        opts = InterpreterOptions.fast(enable_fault_injection=True)
        kwargs.setdefault("devices", [DEVICE, DEVICE])
        kwargs.setdefault("rebalance", True)
        return CuLiServer(
            gpu_config=GPUDeviceConfig(interpreter=opts),
            cpu_config=CPUDeviceConfig(interpreter=opts),
            **kwargs,
        )

    def test_faulty_device_drained_and_evacuated(self):
        with self.make_server() as server:
            faulty = server.open_session("faulty")   # -> #0
            bystander = server.open_session("by")    # -> #1
            victim = server.open_session("victim")   # -> #0
            source = faulty.device_id
            for _ in range(3):
                faulty.submit('(inject-fault "arena-exhausted")')
            kept = victim.submit("(+ 40 2)")
            server.flush()
            assert server.pending == 0
            assert kept.ok and kept.output == "42"
            snap = server.stats.snapshot()
            assert snap["faults"]["contained"] == 3
            assert snap["rebalance"]["devices_drained"] == 1
            assert snap["rebalance"]["migrations"] >= 2
            assert server.pool[source].draining
            # Everyone evacuated the drained device...
            assert faulty.device_id != source
            assert victim.device_id != source
            assert victim.eval("(* 6 7)") == "42"
            assert bystander.eval("(+ 1 1)") == "2"
            # ...and new sessions avoid it too.
            assert server.open_session().device_id != source

    def test_reset_device_returns_drained_device_to_service(self):
        """The operator hook: after the fault source is gone, resetting
        the device clears draining and forgives its recorded faults."""
        with self.make_server() as server:
            faulty = server.open_session("faulty")
            source = faulty.device_id
            for _ in range(3):
                faulty.submit('(inject-fault "livelock")')
            server.flush()
            assert server.pool[source].draining
            faulty.close()
            server.rebalancer.reset_device(source)
            assert not server.pool[source].draining
            # New placements use it again, and the forgiven faults do
            # not immediately re-drain it.
            assert any(
                server.open_session().device_id == source for _ in range(2)
            )
            server.flush()
            assert not server.pool[source].draining

    def test_balanced_pool_never_migrates(self):
        """The rebalancer is a no-op while the pool stays healthy and
        balanced — no migrations, no draining, no modeled cost."""
        with self.make_server() as server:
            sessions = [server.open_session() for _ in range(4)]
            for i, session in enumerate(sessions):
                session.submit(f"(+ {i} 1)")
            server.flush()
            snap = server.stats.snapshot()
            assert snap["rebalance"]["migrations"] == 0
            assert snap["rebalance"]["devices_drained"] == 0
            assert snap["rebalance"]["transfer_ms"] == 0.0

    def test_overload_shedding_levels_queues(self):
        """A deeply skewed queue triggers mid-drain migrations toward
        the idle device (the bench asserts the throughput win; this
        asserts the mechanism)."""
        with self.make_server(max_batch=8) as server:
            heavy = [server.open_session(f"h{i}") for i in (0, 1)]
            # Both heavy sessions land on #0 and #1; skew by queue depth.
            for session in heavy:
                for k in range(6):
                    session.submit(f"(+ {k} 1)")
            # Force the skew onto one device: move h1 next to h0 first.
            if heavy[1].device_id != heavy[0].device_id:
                server.migrate_session(heavy[1], heavy[0].device_id)
            migrations_before = server.stats.sessions_migrated
            server.flush()
            assert server.pending == 0
            assert server.stats.sessions_migrated > migrations_before
            for session in heavy:
                assert all(stats.output for stats in session.history)


class TestSaveRestore:
    def test_fleet_round_trips_through_json(self):
        scripts = {tag: session_script(tag) for tag in ("x", "yy")}
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            for tag, script in scripts.items():
                session = server.open_session(tag)
                for command in script:
                    session.eval(command)
            saved = json.loads(json.dumps(server.save()))
        with CuLiServer(devices=[DEVICE, DEVICE]) as revived:
            restored = revived.restore(saved)
            assert sorted(restored) == ["x", "yy"]
            assert revived.stats.sessions_restored == 2
            assert restored["x"].eval("(f-x 10)") == "11"
            assert restored["yy"].eval("(cons 9 state-yy)") == "(9 1 2 2)"
            # Two sessions spread over both devices on restore.
            assert len({s.device_id for s in restored.values()}) == 2

    def test_save_flushes_pending_requests(self):
        with CuLiServer(devices=[DEVICE]) as server:
            session = server.open_session()
            ticket = session.submit("(setq n 5)")
            saved = server.save()
            assert ticket.done and server.pending == 0
            assert len(saved["sessions"]) == 1

    def test_restore_targets_the_emptiest_arena(self):
        """The placement satellite end to end: with equal session
        counts, a restored heap lands on the device retaining the
        fewest tenured nodes."""
        with CuLiServer(devices=[DEVICE]) as donor:
            session = donor.open_session("mover")
            session.eval("(setq keep (list 1 2 3))")
            saved = donor.save()
        with CuLiServer(devices=[DEVICE, DEVICE]) as target:
            fat = target.open_session("fat")       # -> #0
            slim = target.open_session("slim")     # -> #1
            fat.eval("(setq big (list " + "1 " * 300 + "))")
            slim.eval("(setq small 1)")
            restored = target.restore(saved)
            assert restored["mover"].device_id == slim.device_id
            assert restored["mover"].eval("(length keep)") == "3"

    def test_restore_duplicate_session_id_rejected(self):
        with CuLiServer(devices=[DEVICE]) as server:
            session = server.open_session("dup")
            session.eval("(setq v 1)")
            saved = server.save()
            with pytest.raises(ValueError):
                server.restore(saved)

    def test_restore_rejects_unknown_fleet_version(self):
        from repro.errors import SnapshotError

        with CuLiServer(devices=[DEVICE]) as server:
            with pytest.raises(SnapshotError):
                server.restore({"version": 2, "sessions": []})
            with pytest.raises(SnapshotError):
                server.restore({})

    def test_failed_restore_rolls_back_and_is_retryable(self):
        """A mid-restore failure closes the sessions restored so far, so
        the same payload restores cleanly on a roomier server."""
        with CuLiServer(devices=[DEVICE]) as donor:
            for tag in ("one", "two", "three"):
                session = donor.open_session(tag)
                session.eval(f"(setq keep-{tag} (list " + "1 " * 150 + "))")
            saved = donor.save()
        small = InterpreterOptions.fast(arena_capacity=450)
        with CuLiServer(
            devices=[DEVICE],
            gpu_config=GPUDeviceConfig(interpreter=small),
            cpu_config=CPUDeviceConfig(interpreter=small),
        ) as cramped:
            with pytest.raises(ArenaExhaustedError):
                cramped.restore(saved)
            assert cramped.sessions == {}
            assert cramped.stats.sessions_restored == 0
            assert all(
                d.session_count == 0 for d in cramped.pool.devices.values()
            )
        with CuLiServer(devices=[DEVICE, DEVICE]) as roomy:
            restored = roomy.restore(saved)
            assert sorted(restored) == ["one", "three", "two"]
            assert restored["two"].eval("(length keep-two)") == "150"


class TestMigrationStats:
    def test_transfer_charged_on_both_gpu_links(self):
        with CuLiServer(devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.eval("(setq v (list 1 2 3 4))")
            transfer_before = server.stats.phase_totals.transfer_ms
            record = session.migrate()
            assert record.transfer_ms > 0.0
            stats = server.stats
            assert stats.sessions_migrated == 1
            assert stats.migration_nodes == record.nodes
            assert stats.migration_bytes == record.nbytes
            assert stats.migration_transfer_ms == pytest.approx(record.transfer_ms)
            assert stats.phase_totals.transfer_ms == pytest.approx(
                transfer_before + record.transfer_ms
            )
            assert stats.per_device[record.source].migrations_out == 1
            assert stats.per_device[record.dest].migrations_in == 1
            assert "1 migrations" in stats.render()

    def test_cpu_links_are_free(self):
        """CPU devices share memory with the host: their side of a
        migration costs no transfer time, like their command uploads."""
        with CuLiServer(devices=["intel", "intel"]) as server:
            session = server.open_session()
            session.eval("(setq v 1)")
            record = session.migrate()
            assert record.transfer_ms == 0.0
