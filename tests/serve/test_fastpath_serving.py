"""Serving fast path: tenant isolation must survive indexed session
roots, and the parse cache must never leak state between tenants."""

import pytest

from repro import CuLiServer
from repro.core.interpreter import InterpreterOptions
from repro.gpu.device import GPUDeviceConfig


@pytest.fixture()
def fast_server():
    with CuLiServer(devices=["gtx1080"], fast_path=True) as server:
        yield server


class TestFastPathConfiguration:
    def test_fast_path_is_the_serving_default(self, fast_server):
        pdev = next(iter(fast_server.pool.devices.values()))
        opts = pdev.device.interp.options
        assert opts.intern_symbols and opts.indexed_roots
        assert opts.parse_cache_capacity > 0
        assert pdev.device.interp.parse_cache is not None

    def test_fast_path_false_keeps_literal_mode(self):
        with CuLiServer(devices=["gtx1080"], fast_path=False) as server:
            pdev = next(iter(server.pool.devices.values()))
            opts = pdev.device.interp.options
            assert not opts.intern_symbols and not opts.indexed_roots
            assert pdev.device.interp.parse_cache is None

    def test_explicit_config_wins_over_flag(self):
        config = GPUDeviceConfig(
            interpreter=InterpreterOptions(intern_symbols=True)
        )
        with CuLiServer(devices=["gtx1080"], gpu_config=config) as server:
            pdev = next(iter(server.pool.devices.values()))
            opts = pdev.device.interp.options
            assert opts.intern_symbols
            assert not opts.indexed_roots  # the explicit options, verbatim

    def test_session_roots_are_indexed(self, fast_server):
        session = fast_server.open_session()
        assert session.env.indexed


class TestIsolationWithIndexedRoots:
    def test_defun_isolated_per_tenant(self, fast_server):
        alice = fast_server.open_session()
        bob = fast_server.open_session()
        alice.submit("(defun f (x) (* x x))")
        bob.submit("(defun f (x) (+ x 100))")
        fast_server.flush()
        assert alice.eval("(f 5)") == "25"
        assert bob.eval("(f 5)") == "105"

    def test_setq_shadows_instead_of_mutating_shared_root(self, fast_server):
        alice = fast_server.open_session()
        bob = fast_server.open_session()
        assert alice.eval("(setq shared-counter 1)") == "1"
        # bob never defined it: late binding returns the bare symbol.
        assert bob.eval("shared-counter") == "shared-counter"
        assert alice.eval("shared-counter") == "1"

    def test_many_defines_stay_isolated(self, fast_server):
        """The defun-heavy monotonic-growth pattern the index targets."""
        alice = fast_server.open_session()
        bob = fast_server.open_session()
        for i in range(40):
            alice.submit(f"(defun helper-{i:02d} (x) (+ x {i}))")
            bob.submit(f"(defun helper-{i:02d} (x) (- x {i}))")
        fast_server.flush()
        assert alice.eval("(helper-39 0)") == "39"
        assert bob.eval("(helper-39 0)") == "-39"
        assert len(alice.env) == 40
        assert len(bob.env) == 40

    def test_closed_session_bindings_collected(self, fast_server):
        alice = fast_server.open_session()
        alice.eval("(defun f (x) (* x x))")
        env = alice.env
        alice.close()
        pdev = next(iter(fast_server.pool.devices.values()))
        assert env not in pdev.device.interp.extra_roots


class TestParseCacheAcrossTenants:
    def test_same_text_evaluates_in_each_tenants_env(self, fast_server):
        """A cache hit must materialize into the requesting tenant's
        environment, not replay the first tenant's result."""
        alice = fast_server.open_session()
        bob = fast_server.open_session()
        alice.eval("(setq x 5)")
        bob.eval("(setq x 7)")
        # Identical source text, different tenants, different answers.
        assert alice.eval("(* x x)") == "25"
        assert bob.eval("(* x x)") == "49"

    def test_repeated_submission_is_stable(self, fast_server):
        session = fast_server.open_session()
        outs = [session.eval("'(1 2 3)") for _ in range(4)]
        assert outs == ["(1 2 3)"] * 4

    def test_cache_accumulates_hits_across_tenants(self, fast_server):
        define = "(defun warmup (x) (+ x 1))"
        tenants = [fast_server.open_session() for _ in range(6)]
        for tenant in tenants:
            tenant.submit(define)
        fast_server.flush()
        pdev = next(iter(fast_server.pool.devices.values()))
        stats = pdev.device.interp.parse_cache.stats
        assert stats.hits >= len(tenants) - 1
        for tenant in tenants:
            assert tenant.eval("(warmup 41)") == "42"

    def test_batched_and_fast_outputs_match_literal(self):
        """End-to-end equivalence through the full serving stack."""
        program = [
            "(defun loop-sum (n acc) (if (< n 1) acc (loop-sum (- n 1) (+ acc n))))",
            "(loop-sum 25 0)",
            "(setq total (loop-sum 10 0))",
            "(* total total)",
        ]

        def run(fast_path):
            with CuLiServer(devices=["gtx1080"], fast_path=fast_path) as server:
                session = server.open_session()
                return [session.eval(command) for command in program]

        assert run(True) == run(False)
