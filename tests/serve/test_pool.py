"""DevicePool: placement, queues, lifecycle."""

import pytest

from repro.serve.pool import DevicePool


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DevicePool([])

    def test_duplicate_devices_get_unique_ids(self):
        pool = DevicePool(["gtx1080", "gtx1080", "gtx1080"])
        assert len(pool) == 3
        assert sorted(pool.devices) == ["gtx1080#0", "gtx1080#1", "gtx1080#2"]
        pool.close()

    def test_mixed_kinds(self):
        pool = DevicePool(["gtx480", "intel"])
        kinds = {d.kind for d in pool.devices.values()}
        assert kinds == {"gpu", "cpu"}
        pool.close()


class TestPlacement:
    def test_least_loaded_round_robin(self):
        pool = DevicePool(["gtx480", "gtx480"])
        placements = [pool.place_session().device_id for _ in range(4)]
        assert placements.count("gtx480#0") == 2
        assert placements.count("gtx480#1") == 2
        pool.close()

    def test_session_close_frees_slot(self):
        pool = DevicePool(["gtx480", "gtx480"])
        first = pool.place_session()
        pool.place_session()
        pool.session_closed(first.device_id)
        # The freed device is now least loaded again.
        assert pool.place_session().device_id == first.device_id
        pool.close()

    def test_retained_heap_breaks_session_count_ties(self):
        """The load key counts tenured nodes: with equal session counts
        a placement (e.g. a migration restore arriving with its heap)
        targets the emptiest arena, not an arbitrary one."""
        pool = DevicePool(["gtx480", "gtx480"])
        fat = pool["gtx480#0"]
        fat.device.submit("(defun retained (x) (list x x x))")
        assert fat.retained_nodes > pool["gtx480#1"].retained_nodes
        assert pool.place_session().device_id == "gtx480#1"
        # Key order is sessions first: the fat-but-empty device still
        # wins over an equally-empty-arena device with more sessions.
        assert pool.place_session().device_id == "gtx480#0"
        pool.close()

    def test_load_key_includes_retained_nodes(self):
        pool = DevicePool(["gtx480"])
        pdev = pool["gtx480#0"]
        sessions, retained, queued = pdev.load
        assert sessions == 0 and queued == 0
        assert retained == pdev.device.interp.arena.used
        pool.close()

    def test_draining_device_skipped(self):
        pool = DevicePool(["gtx480", "gtx480"])
        pool["gtx480#0"].draining = True
        for _ in range(3):
            assert pool.place_session().device_id == "gtx480#1"
        # ...unless nothing else is left: the pool never refuses.
        pool["gtx480#1"].draining = True
        assert pool.place_session() is not None
        pool.close()

    def test_exclude_filters_candidates(self):
        pool = DevicePool(["gtx480", "gtx480"])
        assert pool.place_session(exclude={"gtx480#0"}).device_id == "gtx480#1"
        # Exclusions are dropped rather than refusing placement.
        assert (
            pool.place_session(exclude={"gtx480#0", "gtx480#1"}) is not None
        )
        pool.close()


class TestQueues:
    def test_enqueue_and_depths(self):
        pool = DevicePool(["gtx480"])
        assert pool.pending == 0
        pool.enqueue("gtx480#0", object())
        pool.enqueue("gtx480#0", object())
        assert pool.queue_depths() == {"gtx480#0": 2}
        assert pool.pending == 2
        pool.close()


class TestLifecycle:
    def test_close_closes_devices(self):
        pool = DevicePool(["gtx480"])
        device = pool["gtx480#0"].device
        pool.close()
        assert pool.closed
        assert device.closed
        pool.close()  # idempotent
