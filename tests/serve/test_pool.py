"""DevicePool: placement, queues, lifecycle."""

import pytest

from repro.serve.pool import DevicePool


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            DevicePool([])

    def test_duplicate_devices_get_unique_ids(self):
        pool = DevicePool(["gtx1080", "gtx1080", "gtx1080"])
        assert len(pool) == 3
        assert sorted(pool.devices) == ["gtx1080#0", "gtx1080#1", "gtx1080#2"]
        pool.close()

    def test_mixed_kinds(self):
        pool = DevicePool(["gtx480", "intel"])
        kinds = {d.kind for d in pool.devices.values()}
        assert kinds == {"gpu", "cpu"}
        pool.close()


class TestPlacement:
    def test_least_loaded_round_robin(self):
        pool = DevicePool(["gtx480", "gtx480"])
        placements = [pool.place_session().device_id for _ in range(4)]
        assert placements.count("gtx480#0") == 2
        assert placements.count("gtx480#1") == 2
        pool.close()

    def test_session_close_frees_slot(self):
        pool = DevicePool(["gtx480", "gtx480"])
        first = pool.place_session()
        pool.place_session()
        pool.session_closed(first.device_id)
        # The freed device is now least loaded again.
        assert pool.place_session().device_id == first.device_id
        pool.close()


class TestQueues:
    def test_enqueue_and_depths(self):
        pool = DevicePool(["gtx480"])
        assert pool.pending == 0
        pool.enqueue("gtx480#0", object())
        pool.enqueue("gtx480#0", object())
        assert pool.queue_depths() == {"gtx480#0": 2}
        assert pool.pending == 2
        pool.close()


class TestLifecycle:
    def test_close_closes_devices(self):
        pool = DevicePool(["gtx480"])
        device = pool["gtx480#0"].device
        pool.close()
        assert pool.closed
        assert device.closed
        pool.close()  # idempotent
