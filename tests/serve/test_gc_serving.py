"""GC work surfaced through BatchResult and ServerStats (generational
region GC satellite): the serving layer reports nodes freed, regions
reset, major collections, and GC time per batch and server-wide."""

import pytest

from repro import BatchRequest, CuLiServer
from repro.core.interpreter import InterpreterOptions
from repro.gpu.device import GPUDevice, GPUDeviceConfig
from repro.gpu.specs import GTX1080


def gpu_device(gc_policy):
    options = InterpreterOptions.fast(gc_policy=gc_policy)
    return GPUDevice(GTX1080, GPUDeviceConfig(interpreter=options))


class TestBatchResultGC:
    def test_generational_batch_reports_region_reset(self):
        dev = gpu_device("generational")
        result = dev.submit_batch(
            [BatchRequest("(+ 1 2)"), BatchRequest("(* 3 4)")]
        )
        assert result.regions_reset == 1  # one region per batch txn
        assert result.major_collections == 0
        assert result.nodes_freed > 0
        assert result.gc_wall_ms > 0.0
        assert result.times.gc_ms > 0.0
        dev.close()

    def test_full_sweep_batch_reports_major(self):
        dev = gpu_device("full")
        result = dev.submit_batch([BatchRequest("(+ 1 2)")])
        assert result.regions_reset == 0
        assert result.major_collections == 1
        assert result.times.gc_ms > 0.0
        dev.close()

    def test_literal_batch_charges_no_gc_time(self):
        dev = GPUDevice(GTX1080)  # literal defaults
        result = dev.submit_batch([BatchRequest("(+ 1 2)")])
        assert result.times.gc_ms == 0.0
        assert result.regions_reset == 0
        assert result.nodes_freed > 0  # the uncharged sweep still runs
        dev.close()

    def test_gc_time_outside_kernel_phases(self):
        dev = gpu_device("generational")
        result = dev.submit_batch([BatchRequest("(+ 1 2)")])
        times = result.times
        assert times.kernel_ms == times.parse_ms + times.eval_ms + times.print_ms
        assert times.total_ms == pytest.approx(
            times.kernel_ms + times.other_ms + times.transfer_ms
            + times.host_ms + times.gc_ms
        )
        dev.close()

    def test_item_gc_shares_sum_to_batch(self):
        dev = gpu_device("generational")
        result = dev.submit_batch(
            [BatchRequest(f"(+ {i} 1)") for i in range(4)]
        )
        item_gc = sum(item.stats.times.gc_ms for item in result.items)
        assert item_gc == pytest.approx(result.times.gc_ms)
        dev.close()


class TestServerStatsGC:
    def test_server_accumulates_gc_work(self):
        with CuLiServer(devices=["gtx1080"], max_batch=8) as server:
            tenants = [server.open_session() for _ in range(4)]
            for i, tenant in enumerate(tenants):
                tenant.submit(f"(defun f-{i} (x) (+ x {i}))")
                tenant.submit(f"(f-{i} 10)")
            server.flush()
            stats = server.stats
            assert stats.gc_regions_reset >= 1  # fast path = generational
            assert stats.gc_major_collections == 0
            assert stats.gc_nodes_freed > 0
            assert stats.gc_wall_ms > 0.0
            snap = server.stats.snapshot()
            assert snap["gc"]["regions_reset"] == stats.gc_regions_reset
            assert snap["gc"]["nodes_freed"] == stats.gc_nodes_freed
            assert snap["phases_ms"]["gc"] == stats.phase_totals.gc_ms
            assert "nodes freed" in server.stats.render()

    def test_literal_serving_reports_majors_not_resets(self):
        with CuLiServer(devices=["gtx1080"], fast_path=False) as server:
            tenant = server.open_session()
            tenant.submit("(+ 1 2)")
            server.flush()
            assert server.stats.gc_regions_reset == 0
            assert server.stats.gc_major_collections >= 1
            assert server.stats.phase_totals.gc_ms == 0.0  # uncharged

    def test_server_gc_policy_knob(self):
        """CuLiServer(gc_policy=...) overrides the fast path's default
        reclamation policy (e.g. the charged full-sweep baseline)."""
        with CuLiServer(devices=["gtx1080"], gc_policy="full") as server:
            tenant = server.open_session()
            tenant.eval("(+ 1 2)")
            assert server.stats.gc_major_collections >= 1
            assert server.stats.gc_regions_reset == 0
            assert server.stats.phase_totals.gc_ms > 0.0  # charged

    def test_gc_policy_conflicts_with_literal_serving(self):
        with pytest.raises(ValueError, match="fast_path"):
            CuLiServer(devices=["gtx1080"], fast_path=False, gc_policy="full")

    def test_tenant_state_survives_batched_region_resets(self):
        """Isolation + persistence under the generational default: many
        batches, retained bindings keep answering correctly."""
        with CuLiServer(devices=["gtx1080"], max_batch=8) as server:
            a = server.open_session()
            b = server.open_session()
            a.eval("(defun f (x) (* x x))")
            b.eval("(defun f (x) (+ x 100))")
            for _ in range(3):
                assert a.eval("(f 5)") == "25"
                assert b.eval("(f 5)") == "105"
            assert server.stats.gc_regions_reset >= 6
