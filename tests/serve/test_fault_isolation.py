"""Fault-isolated batch serving: one tenant's device fault must never
take down its co-tenants.

Covers the whole containment stack: per-job device-fault containment in
both device back-ends (with mid-batch nursery rollback), the scheduler's
quarantine policy for batch-fatal failures, the ServerStats fault and
cancellation accounting, the abort-path nursery-region leak fix, the
byte-vs-char payload offset fix, and the sanitized batch-capacity
accounting.
"""

from __future__ import annotations

import pytest

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDevice, CPUDeviceConfig
from repro.cpu.specs import INTEL_E5_2620
from repro.errors import (
    ArenaExhaustedError,
    DeviceShutdownError,
    HostProtocolError,
    LivelockError,
    is_containable_fault,
)
from repro.gpu.device import GPUDevice, GPUDeviceConfig
from repro.gpu.specs import GTX1080
from repro.runtime.batch import BatchRequest
from repro.serve import CuLiServer


def fault_server(gc_policy: str = "generational", **kwargs) -> CuLiServer:
    """A one-GPU server whose interpreter has the inject-fault builtin."""
    opts = InterpreterOptions.fast(
        enable_fault_injection=True, gc_policy=gc_policy
    )
    kwargs.setdefault("devices", ["gtx1080"])
    kwargs.setdefault("max_batch", 16)
    return CuLiServer(
        gpu_config=GPUDeviceConfig(interpreter=opts),
        cpu_config=CPUDeviceConfig(interpreter=opts),
        **kwargs,
    )


class TestContainmentClassification:
    def test_containable_faults(self):
        assert is_containable_fault(ArenaExhaustedError("x"))
        assert is_containable_fault(LivelockError("x"))

    def test_batch_fatal_faults(self):
        assert not is_containable_fault(DeviceShutdownError("x"))
        assert not is_containable_fault(HostProtocolError("x"))
        assert not is_containable_fault(ValueError("x"))


class TestAcceptanceScenario:
    """The issue's acceptance criterion: a 16-tenant batch containing one
    arena-exhausting request and one injected livelock resolves every
    other ticket with correct output, drain() completes with zero
    pending tickets, and the device serves subsequent batches."""

    @pytest.mark.parametrize("gc_policy", ["generational", "full"])
    def test_sixteen_tenants_two_faults(self, gc_policy):
        with fault_server(gc_policy=gc_policy) as server:
            tenants = [server.open_session() for _ in range(16)]
            tickets = []
            for i, tenant in enumerate(tenants):
                if i == 3:
                    tickets.append(
                        tenant.submit('(inject-fault "arena-exhausted")')
                    )
                elif i == 11:
                    tickets.append(tenant.submit('(inject-fault "livelock")'))
                else:
                    tickets.append(tenant.submit(f"(* {i} {i})"))
            server.flush()
            assert server.pending == 0
            for i, ticket in enumerate(tickets):
                assert ticket.done
                if i == 3:
                    assert isinstance(ticket.error, ArenaExhaustedError)
                elif i == 11:
                    assert isinstance(ticket.error, LivelockError)
                else:
                    assert ticket.ok and ticket.output == str(i * i)
            # The device serves subsequent batches.
            assert tenants[0].eval("(+ 40 2)") == "42"
            snap = server.stats.snapshot()
            assert snap["faults"]["contained"] == 2
            assert snap["faults"]["batch_fatal"] == 0

    def test_real_arena_exhaustion_rollback_frees_co_tenants(self):
        """A genuinely arena-exhausting request (no injection): the
        mid-batch rollback returns its allocations so later jobs in the
        *same* batch can allocate, instead of cascading exhaustion."""
        device = GPUDevice(
            GTX1080,
            config=GPUDeviceConfig(
                interpreter=InterpreterOptions.fast(arena_capacity=800)
            ),
        )
        big = "(list " + "1 " * 600 + ")"
        result = device.submit_batch(
            [
                BatchRequest("(+ 1 2)"),
                BatchRequest(big),
                BatchRequest("(list 1 2 3 4 5 6 7 8)"),
                BatchRequest("(* 6 7)"),
            ]
        )
        assert result.outputs[0] == "3"
        assert isinstance(result.items[1].error, ArenaExhaustedError)
        assert result.outputs[2] == "(1 2 3 4 5 6 7 8)"
        assert result.outputs[3] == "42"
        assert device.interp.arena.gc_stats.checkpoint_rollbacks >= 1
        assert device.submit("(+ 2 2)").output == "4"
        device.close()

    def test_cpu_mirror_contains_faults(self):
        device = CPUDevice(
            INTEL_E5_2620,
            config=CPUDeviceConfig(
                interpreter=InterpreterOptions.fast(enable_fault_injection=True)
            ),
        )
        result = device.submit_batch(
            [
                BatchRequest("(+ 1 2)"),
                BatchRequest('(inject-fault "livelock")'),
                BatchRequest('(inject-fault "arena-exhausted")'),
                BatchRequest("(* 6 7)"),
            ]
        )
        assert result.outputs[0] == "3"
        assert isinstance(result.items[1].error, LivelockError)
        assert isinstance(result.items[2].error, ArenaExhaustedError)
        assert result.outputs[3] == "42"
        assert len(result.faults) == 2
        assert device.submit("(+ 2 2)").output == "4"
        device.close()

    def test_livelock_during_eval_contained_per_job(self):
        """A livelock raised *inside one job's evaluation* kills that job
        only; the batch-level engine-configuration livelocks (Fig. 12/13
        ablations) are raised before any job runs and still abort."""
        from tests.conftest import make_tiny_gpu_spec

        device = GPUDevice(
            make_tiny_gpu_spec(),
            config=GPUDeviceConfig(
                interpreter=InterpreterOptions.fast(enable_fault_injection=True),
            ),
        )
        result = device.submit_batch(
            [
                BatchRequest("(+ 1 1)"),
                BatchRequest('(inject-fault "livelock")'),
                BatchRequest("(+ 2 2)"),
            ]
        )
        assert result.outputs[0] == "2"
        assert isinstance(result.items[1].error, LivelockError)
        assert result.outputs[2] == "4"
        device.close()


class TestQuarantine:
    def test_batch_fatal_quarantines_then_poisons(self):
        """A batch-fatal failure requeues every ticket for a solo retry;
        the deterministically-crashing one resolves with its error after
        at most one solo retry, the rest succeed, drain terminates."""
        with fault_server() as server:
            tenants = [server.open_session() for _ in range(6)]
            healthy = [
                tenant.submit(f"(+ {i} 10)") for i, tenant in enumerate(tenants[:5])
            ]
            poison = tenants[5].submit('(inject-fault "protocol")')
            batches = server.flush()
            assert server.pending == 0
            for i, ticket in enumerate(healthy):
                assert ticket.ok and ticket.output == str(i + 10)
            assert isinstance(poison.error, HostProtocolError)
            assert poison.quarantined
            snap = server.stats.snapshot()
            assert snap["faults"]["batch_fatal"] == 2  # shared batch + solo retry
            assert snap["faults"]["quarantine_retries"] == 6
            assert snap["faults"]["poisoned"] == 1
            # 1 failed shared batch + 6 solo batches.
            assert batches == 7
            # The device survives the protocol fault and keeps serving.
            assert tenants[0].eval("(* 3 3)") == "9"

    def test_solo_fatal_resolves_without_retry(self):
        """A single-ticket batch that fails fatally already ran alone:
        it resolves immediately instead of being retried."""
        with fault_server() as server:
            tenant = server.open_session()
            ticket = tenant.submit('(inject-fault "shutdown")')
            batches = server.flush()
            assert batches == 1
            assert server.pending == 0
            assert isinstance(ticket.error, DeviceShutdownError)
            assert server.stats.snapshot()["faults"]["quarantine_retries"] == 0

    def test_fatal_batch_records_stats_and_history(self):
        """Satellite: device-failed batches must reach stats and the
        session history — bookkeeping never diverges from what tenants
        observed."""
        with fault_server() as server:
            a = server.open_session()
            b = server.open_session()
            ta = a.submit("(+ 1 1)")
            tb = b.submit('(inject-fault "shutdown")')
            server.flush()
            assert ta.ok
            # Both sessions saw exactly one command each; both histories
            # recorded it (including the poisoned one).
            assert len(a.history) == 1 and a.history[0].output == "2"
            assert len(b.history) == 1
            assert b.history[0].output == str(tb.stats.output)
            snap = server.stats.snapshot()
            assert (
                snap["requests"]["completed"] == snap["requests"]["enqueued"] == 2
            )

    def test_host_bug_propagates_instead_of_quarantining(self):
        """A non-CuLiError out of submit_batch is a simulator bug, not a
        device fault: tickets resolve (no tenant hangs) but the crash
        surfaces instead of being absorbed as quarantine."""
        with fault_server() as server:
            tenant = server.open_session()
            ticket = tenant.submit("(+ 1 1)")
            pdev = server.pool[tenant.device_id]

            def boom(requests):
                raise AttributeError("simulator bug")

            pdev.device.submit_batch = boom
            with pytest.raises(AttributeError):
                server.flush()
            assert ticket.done and isinstance(ticket.error, AttributeError)
            assert len(tenant.history) == 1
            assert server.stats.snapshot()["faults"]["batch_fatal"] == 0

    def test_quarantine_preserves_session_order(self):
        """A session's later command still executes after its quarantined
        predecessor resolves (strict REPL order survives requeueing)."""
        with fault_server() as server:
            tenant = server.open_session()
            other = server.open_session()
            first = tenant.submit('(inject-fault "shutdown")')
            second = tenant.submit("(+ 2 3)")
            bystander = other.submit("(* 2 2)")
            server.flush()
            assert server.pending == 0
            assert isinstance(first.error, DeviceShutdownError)
            assert second.ok and second.output == "5"
            assert bystander.ok and bystander.output == "4"


class TestAbortRegionLeak:
    """Regression: the abort path must close the open nursery region
    even when gc_after_command is off — otherwise the next transaction
    silently joins the aborted batch's region."""

    def _options(self):
        return InterpreterOptions.fast(
            enable_fault_injection=True, gc_after_command=False
        )

    def test_gpu_batch_abort_closes_region(self):
        device = GPUDevice(
            GTX1080, config=GPUDeviceConfig(interpreter=self._options())
        )
        with pytest.raises(DeviceShutdownError):
            device.submit_batch(
                [BatchRequest("(+ 1 1)"), BatchRequest('(inject-fault "shutdown")')]
            )
        assert not device.interp.arena.region_active
        assert device.cmdbuf.dev_sync == 0
        assert device.submit("(+ 1 2)").output == "3"
        device.close()

    def test_gpu_submit_abort_closes_region(self):
        device = GPUDevice(
            GTX1080, config=GPUDeviceConfig(interpreter=self._options())
        )
        with pytest.raises(DeviceShutdownError):
            device.submit('(inject-fault "shutdown")')
        assert not device.interp.arena.region_active
        assert device.submit("(+ 1 2)").output == "3"
        device.close()

    def test_cpu_batch_abort_closes_region(self):
        device = CPUDevice(
            INTEL_E5_2620, config=CPUDeviceConfig(interpreter=self._options())
        )
        with pytest.raises(DeviceShutdownError):
            device.submit_batch(
                [BatchRequest("(+ 1 1)"), BatchRequest('(inject-fault "shutdown")')]
            )
        assert not device.interp.arena.region_active
        assert device.submit("(+ 1 2)").output == "3"
        device.close()


class TestMultibytePayloadOffsets:
    """Satellite: payload packing sizes requests in bytes, so base
    offsets must advance in bytes too — not characters."""

    def test_offsets_align_with_packed_payload(self):
        texts = ['(princ "héllo")', "(+ 1 2)", '(princ "λμν")', "(* 2 3)"]
        offsets = GPUDevice._payload_base_offsets(texts, {})
        payload = " ".join(texts).encode()
        for text, off in zip(texts, offsets):
            data = text.encode()
            assert payload[off : off + len(data)] == data

    def test_refused_requests_carry_no_payload(self):
        texts = ["(+ 1 2)", "(oops", "(* 2 3)"]
        offsets = GPUDevice._payload_base_offsets(texts, {1: Exception("x")})
        assert offsets == [0, 8, 8]

    def test_multibyte_char_advances_by_encoded_size(self):
        texts = ["(é)", "(+ 1 2)"]
        offsets = GPUDevice._payload_base_offsets(texts, {})
        # "(é)" is 3 chars but 4 bytes ("é" is 2 bytes in UTF-8), plus
        # the separator: byte offset 5, where the old char-based
        # accounting would misalign the second request at 4.
        assert offsets == [0, 5]

    def test_multibyte_batch_outputs_correct(self):
        device = GPUDevice(GTX1080)
        result = device.submit_batch(
            [
                BatchRequest('(princ "héllo")'),
                BatchRequest("(+ 1 2)"),
                BatchRequest('"λμν"'),
            ]
        )
        assert result.outputs[0] == 'héllo"héllo"'
        assert result.outputs[1] == "3"
        assert result.outputs[2] == '"λμν"'
        device.close()


class TestSanitizedCapacityAccounting:
    """Satellite: form_batch must size what the device sizes — the
    sanitized text — and stay aligned with the device's payload split."""

    def test_payload_size_uses_sanitized_bytes(self):
        from repro.serve.scheduler import Scheduler

        raw = "(+ 1 2)" + "\x00" * 1000  # dropped by sanitization
        assert Scheduler.payload_size(raw) == len("(+ 1 2)".encode()) + 1
        assert Scheduler.payload_size("(é)") == len("(é)".encode()) + 1

    def test_boundary_raw_oversized_sanitized_fits_one_batch(self):
        """Two requests whose *raw* sizes each exceed the command buffer
        but whose sanitized payloads are tiny must share one batch and
        one buffer transaction (the old char/raw accounting split them)."""
        with fault_server(max_batch=8) as server:
            pdev = next(iter(server.pool.devices.values()))
            capacity = pdev.device.cmdbuf.capacity
            pad = "\x00" * capacity  # sanitization drops every byte
            a = server.open_session()
            b = server.open_session()
            ta = a.submit("(+ 1 2)" + pad)
            tb = b.submit("(* 2 3)" + pad)
            batch = server.scheduler.form_batch(pdev)
            assert batch == [ta, tb]
            uploads_before = pdev.device.cmdbuf.log.uploads
            server.scheduler.dispatch(pdev, batch, server.stats)
            assert pdev.device.cmdbuf.log.uploads == uploads_before + 1
            assert ta.output == "3" and tb.output == "6"

    def test_capacity_split_still_respected(self):
        """Sanitized sizing still splits genuinely over-capacity pairs."""
        with fault_server(max_batch=8) as server:
            pdev = next(iter(server.pool.devices.values()))
            capacity = pdev.device.cmdbuf.capacity
            n = (capacity // 2) // 2  # two of these exceed capacity
            big = "(+ " + "1 " * n + ")"
            a = server.open_session()
            b = server.open_session()
            ta = a.submit(big)
            tb = b.submit(big)
            batch = server.scheduler.form_batch(pdev)
            assert batch == [ta]
            assert len(pdev.queue) == 1
            server.scheduler.dispatch(pdev, batch, server.stats)
            server.flush()
            assert ta.output == tb.output == str(n)


class TestCancellationAccounting:
    """Satellite: cancelled tickets must not leave enqueued > completed
    forever — the queue accounting balances in snapshot()/render()."""

    def test_close_session_records_cancellations(self):
        with fault_server() as server:
            a = server.open_session()
            b = server.open_session()
            a.submit("(+ 1 1)")
            a.submit("(+ 2 2)")
            kept = b.submit("(* 3 3)")
            a.close()
            snap = server.stats.snapshot()
            assert snap["requests"]["enqueued"] == 3
            assert snap["requests"]["cancelled"] == 2
            server.flush()
            snap = server.stats.snapshot()
            assert kept.ok
            assert (
                snap["requests"]["completed"] + snap["requests"]["cancelled"]
                == snap["requests"]["enqueued"]
            )
            assert "2 cancelled" in server.stats.render()

    def test_fault_lines_in_render(self):
        with fault_server() as server:
            tenant = server.open_session()
            tenant.submit('(inject-fault "arena-exhausted")')
            server.flush()
            rendered = server.stats.render()
            assert "1 contained" in rendered
            assert "0 batch-fatal" in rendered


class TestDeviceStatsFaults:
    def test_per_device_fault_counter(self):
        with fault_server() as server:
            tenant = server.open_session()
            tenant.submit('(inject-fault "livelock")')
            other = server.open_session()
            other.submit('(inject-fault "shutdown")')
            server.flush()
            device_id = tenant.device_id
            snap = server.stats.snapshot()
            # one contained + two batch-fatal attempts (shared + solo).
            assert snap["devices"][device_id]["faults"] == 3
