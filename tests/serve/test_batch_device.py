"""Device-level batched submission: correctness and cost amortization."""

import pytest

from repro.cpu.device import CPUDevice
from repro.cpu.specs import INTEL_E5_2620
from repro.errors import DeviceShutdownError, LivelockError
from repro.gpu.device import GPUDevice, GPUDeviceConfig
from repro.gpu.specs import GTX1080
from repro.runtime.batch import BatchRequest

FORMS = ["(+ 1 2)", "(* 6 7)", "(append '(a) '(b c))", "(if (< 1 2) 'yes 'no)"]
EXPECTED = ["3", "42", "(a b c)", "yes"]


@pytest.fixture
def gpu():
    device = GPUDevice(GTX1080)
    yield device
    device.close()


@pytest.fixture
def cpu():
    device = CPUDevice(INTEL_E5_2620)
    yield device
    device.close()


class TestCorrectness:
    @pytest.mark.parametrize("make", ["gpu", "cpu"])
    def test_batch_outputs_match_sequential(self, make, gpu, cpu):
        device = gpu if make == "gpu" else cpu
        result = device.submit_batch([BatchRequest(f) for f in FORMS])
        assert result.outputs == EXPECTED
        assert result.size == len(FORMS)
        assert not result.errors

    def test_empty_batch(self, gpu):
        result = gpu.submit_batch([])
        assert result.size == 0 and result.times.total_ms == 0.0

    def test_closed_device_rejects_batch(self, gpu):
        gpu.close()
        with pytest.raises(DeviceShutdownError):
            gpu.submit_batch([BatchRequest("1")])

    def test_default_env_is_global(self, gpu):
        gpu.submit_batch([BatchRequest("(setq shared 9)")])
        assert gpu.submit("shared").output == "9"

    def test_nested_parallel_degrades_inside_batch(self, gpu):
        """A ||| inside a served request falls back to sequential eval
        (single master), but still produces correct results."""
        env = gpu.create_session_env()
        gpu.submit_batch([BatchRequest("(defun sq (x) (* x x))", env=env)])
        result = gpu.submit_batch([BatchRequest("(||| 4 sq (1 2 3 4))", env=env)])
        assert result.outputs == ["(1 4 9 16)"]
        assert gpu.engine.nested_fallbacks >= 1


class TestAmortization:
    def test_batch_cheaper_than_sequential_commands(self, gpu):
        """One batch of k commands beats k single submissions: the
        handshake and PCIe latency are paid once, and tenants evaluate
        concurrently on worker warps."""
        envs = [gpu.create_session_env(f"t{i}") for i in range(8)]
        work = "(defun loop-sum (n acc) (if (< n 1) acc (loop-sum (- n 1) (+ acc n))))"
        for env in envs:
            gpu.submit_batch([BatchRequest(work, env=env)])
        command = "(loop-sum 40 0)"
        sequential_ms = sum(
            gpu.submit(command, env=env).times.total_ms for env in envs
        )
        batched = gpu.submit_batch([BatchRequest(command, env=env) for env in envs])
        assert batched.outputs == ["820"] * 8
        assert batched.times.total_ms < sequential_ms

    def test_one_handshake_per_batch(self, gpu):
        single = gpu.submit("(+ 1 1)")
        batch = gpu.submit_batch([BatchRequest("(+ 1 1)") for _ in range(6)])
        # other_ms is the per-command handshake: charged once per batch.
        assert batch.times.other_ms == pytest.approx(single.times.other_ms)

    def test_shared_rounds_amortize_distribution(self, gpu):
        batch = gpu.submit_batch([BatchRequest("(* 3 3)") for _ in range(6)])
        assert batch.rounds == 1  # six tenants, one distribution round
        assert batch.jobs == 6

    def test_worker_wall_below_lane_sum(self, gpu):
        """Tenants placed one per warp run concurrently: round wall time
        is far below the sum of per-request eval times."""
        batch = gpu.submit_batch(
            [BatchRequest(f"(* {i} {i})") for i in range(1, 9)]
        )
        lane_sum = sum(item.stats.times.worker_ms for item in batch.items)
        assert batch.times.worker_ms < lane_sum
        assert batch.times.worker_ms > 0

    def test_cpu_batch_waves(self, cpu):
        n = cpu.spec.hw_threads + 1  # force a second wave
        batch = cpu.submit_batch([BatchRequest("(+ 1 1)") for _ in range(n)])
        assert batch.outputs == ["2"] * n
        assert batch.rounds >= 2
        assert batch.times.other_ms == pytest.approx(
            cpu.spec.command_overhead_us / 1000.0
        )

    def test_per_item_stats_additive_shares(self, gpu):
        batch = gpu.submit_batch([BatchRequest("(+ 2 2)") for _ in range(4)])
        shared = sum(item.stats.times.other_ms for item in batch.items)
        assert shared == pytest.approx(batch.times.other_ms)
        transfer = sum(item.stats.times.transfer_ms for item in batch.items)
        assert transfer == pytest.approx(batch.times.transfer_ms)


class TestDeviceLevelInvariants:
    def test_combined_payload_split_into_transactions(self, gpu):
        """Two individually-valid 40 KiB commands exceed the 64 KiB
        buffer together: the device splits them into two transactions
        instead of failing the batch."""
        big = "(+ " + " ".join(["1"] * 20000) + ")"  # ~40 KiB each
        result = gpu.submit_batch([BatchRequest(big), BatchRequest(big)])
        assert result.outputs == ["20000", "20000"]
        single = gpu.submit("(+ 1 1)")
        # Two buffer transactions => two handshakes.
        assert result.times.other_ms == pytest.approx(2 * single.times.other_ms)

    def test_master_block_ablation_livelocks_service_round(self):
        """Fig. 12 applies to service rounds exactly as to ||| rounds."""
        device = GPUDevice(
            GTX1080, config=GPUDeviceConfig(disable_master_block_workers=False)
        )
        with pytest.raises(LivelockError):
            device.submit_batch([BatchRequest("(+ 1 1)")])
        device.close()

    def test_volta_without_sync_flag_skips_flag_charges(self):
        """On Volta (independent thread scheduling) a disabled sync flag
        is safe, and its ATOMIC_RMW traffic must not be charged."""
        from repro.gpu.specs import TESLA_V100

        with_flag = GPUDevice(TESLA_V100)
        without_flag = GPUDevice(
            TESLA_V100, config=GPUDeviceConfig(enable_block_sync_flag=False)
        )
        r_on = with_flag.submit_batch([BatchRequest("(* 2 2)")] * 3)
        r_off = without_flag.submit_batch([BatchRequest("(* 2 2)")] * 3)
        assert r_off.outputs == r_on.outputs == ["4"] * 3
        assert r_off.times.distribute_ms < r_on.times.distribute_ms
        with_flag.close()
        without_flag.close()

    def test_worker_print_output_is_charged(self, gpu):
        """princ inside a served request charges the worker context, as
        in single-command mode: eval cost grows with printed length."""
        short = gpu.submit_batch([BatchRequest('(princ "ab")')])
        long = gpu.submit_batch([BatchRequest('(princ "' + "x" * 400 + '")')])
        assert long.items[0].stats.times.eval_ms > short.items[0].stats.times.eval_ms


class TestFailureModes:
    def test_sync_flag_ablation_livelocks_service_round(self):
        device = GPUDevice(
            GTX1080, config=GPUDeviceConfig(enable_block_sync_flag=False)
        )
        with pytest.raises(LivelockError):
            device.submit_batch([BatchRequest("(+ 1 1)"), BatchRequest("(+ 2 2)")])
        device.close()

    def test_cpu_arena_exhaustion_contained_and_collected(self):
        """Arena exhaustion mid-batch is contained to the exhausting
        request (fault isolation): co-tenants complete, the faulted
        request's partial trees are reclaimed, and the arena does not
        leak across the batch."""
        from repro.core.interpreter import InterpreterOptions
        from repro.cpu.device import CPUDeviceConfig
        from repro.errors import ArenaExhaustedError

        device = CPUDevice(
            INTEL_E5_2620,
            config=CPUDeviceConfig(
                interpreter=InterpreterOptions(arena_capacity=600)
            ),
        )
        used_before = device.interp.arena.stats.allocs - device.interp.arena.stats.frees
        result = device.submit_batch(
            [BatchRequest("(+ 1 1)"), BatchRequest("(list " + "1 " * 400 + ")")]
        )
        assert result.outputs[0] == "2"
        assert isinstance(result.items[1].error, ArenaExhaustedError)
        assert result.items[1].faulted
        used_after = device.interp.arena.stats.allocs - device.interp.arena.stats.frees
        assert used_after <= used_before + 5  # partial trees were reclaimed
        assert device.submit("(+ 2 2)").output == "4"  # still healthy
        device.close()

    def test_batch_survives_mixed_errors(self, gpu):
        result = gpu.submit_batch(
            [
                BatchRequest("(+ 1 2)"),
                BatchRequest("(car 5)"),
                BatchRequest("(unclosed"),
                BatchRequest("(* 2 2)"),
            ]
        )
        assert result.outputs[0] == "3"
        assert result.outputs[1].startswith("error:")
        assert result.outputs[2].startswith("error:")
        assert result.outputs[3] == "4"
        assert len(result.errors) == 2
        # The device is still healthy afterwards.
        assert gpu.submit("(+ 40 2)").output == "42"
