"""End-to-end serving: tenant isolation, persistence, stats accounting."""

import pytest

from repro import CuLiServer, CuLiSession


@pytest.fixture
def server():
    srv = CuLiServer(devices=["gtx1080"], max_batch=16)
    yield srv
    srv.close()


class TestIsolation:
    def test_defun_isolated_between_tenants(self, server):
        alice = server.open_session()
        bob = server.open_session()
        alice.submit("(defun f (x) (* x x))")
        bob.submit("(defun f (x) (+ x 100))")
        server.flush()
        assert alice.eval("(f 5)") == "25"
        assert bob.eval("(f 5)") == "105"

    def test_setq_isolated_between_tenants(self, server):
        alice = server.open_session()
        bob = server.open_session()
        alice.submit("(setq v 1)")
        bob.submit("(setq v 2)")
        server.flush()
        assert alice.eval("v") == "1"
        assert bob.eval("v") == "2"

    def test_tenant_defines_invisible_to_device_global_env(self, server):
        alice = server.open_session()
        alice.eval("(setq private 7)")
        device = server.pool[alice.device_id].device
        # The device's own (global-env) REPL never saw the symbol.
        assert device.submit("private").output == "private"

    def test_setq_on_builtin_shadows_instead_of_corrupting(self, server):
        """A tenant's setq on a globally-bound symbol (even a builtin)
        shadows it in the session root; other tenants and the device's
        global environment are untouched."""
        alice = server.open_session()
        bob = server.open_session()
        alice.eval("(setq car 42)")
        assert bob.eval("(car (quote (1 2)))") == "1"
        assert alice.eval("car") == "42"
        device = server.pool[alice.device_id].device
        assert device.submit("(car (quote (7 8)))").output == "7"

    def test_macro_isolation(self, server):
        alice = server.open_session()
        bob = server.open_session()
        alice.eval("(defmacro m (e) (list 'progn e e))")
        assert alice.eval("(setq k 0)") == "0"
        alice.eval("(m (setq k (+ k 1)))")
        assert alice.eval("k") == "2"
        # bob never defined m: it stays an unbound head.
        assert "error" not in bob.eval("(setq k 5)")


class TestPersistence:
    def test_environment_persists_across_batches(self, server):
        sess = server.open_session()
        sess.eval("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        sess.eval("(setq memo 55)")
        # Several flush cycles later the definitions are still there.
        for _ in range(3):
            server.flush()
        assert sess.eval("(fib 10)") == "55"
        assert sess.eval("memo") == "55"

    def test_bindings_survive_garbage_collection(self, server):
        sess = server.open_session()
        sess.eval("(setq keep (list 1 2 3))")
        other = server.open_session()
        # Other tenants' commands trigger end-of-batch collections.
        for i in range(3):
            other.eval(f"(+ {i} {i})")
        assert sess.eval("keep") == "(1 2 3)"

    def test_closed_session_env_is_reclaimed(self, server):
        sess = server.open_session()
        sess.eval("(setq big (list 1 2 3 4 5 6 7 8))")
        device = server.pool[sess.device_id].device
        interp = device.interp
        assert sess.env in interp.extra_roots
        sess.close()
        assert sess.env not in interp.extra_roots
        freed = interp.collect_garbage()
        assert freed > 0  # the tenant's list became garbage

    def test_closed_session_rejects_submissions(self, server):
        sess = server.open_session()
        sess.close()
        with pytest.raises(RuntimeError):
            sess.submit("1")

    def test_close_cancels_queued_tickets(self, server):
        """Tickets still queued when their session closes are resolved
        with an error — never evaluated against the released (and
        possibly collected) environment."""
        sess = server.open_session()
        sess.eval("(defun f (x) (* x x))")
        t1 = sess.submit("(f 4)")
        t2 = sess.submit("(f 5)")
        other = server.open_session()
        t3 = other.submit("(+ 1 1)")
        sess.close()
        server.flush()
        assert t1.done and not t1.ok and "closed" in t1.output
        assert t2.done and not t2.ok
        assert t3.ok and t3.output == "2"  # other tenants unaffected


class TestErrorHandling:
    def test_lisp_error_isolated_to_its_request(self, server):
        good = server.open_session()
        bad = server.open_session()
        t_good = good.submit("(+ 1 2)")
        t_bad = bad.submit("(car 5)")  # type error
        server.flush()
        assert t_good.ok and t_good.output == "3"
        assert not t_bad.ok and t_bad.error is not None
        assert t_bad.output.startswith("error:")

    def test_unbalanced_request_isolated(self, server):
        good = server.open_session()
        bad = server.open_session()
        t_good = good.submit("(* 3 3)")
        t_bad = bad.submit("(broken")
        server.flush()
        assert t_good.output == "9"
        assert not t_bad.ok

    def test_large_commands_split_into_capacity_bounded_batches(self, server):
        """Individually-valid large commands never overflow the shared
        command buffer: the scheduler packs batches within capacity."""
        sessions = [server.open_session() for _ in range(3)]
        big = "(+ " + " ".join(["1"] * 15000) + ")"  # ~30 KiB, fits alone
        tickets = [s.submit(big) for s in sessions]
        server.flush()
        assert [t.output for t in tickets] == ["15000"] * 3
        assert server.stats.batches >= 2  # could not fit in one 64 KiB upload

    def test_over_capacity_command_refused_per_request(self, server):
        """A single command larger than the command buffer is refused as
        that request's error; batchmates are unaffected."""
        big_sess = server.open_session()
        ok_sess = server.open_session()
        huge = "(+ " + " ".join(["1"] * 40000) + ")"  # ~80 KiB > 64 KiB
        t_huge = big_sess.submit(huge)
        t_ok = ok_sess.submit("(+ 2 2)")
        server.flush()
        assert not t_huge.ok and "exceeds command buffer" in t_huge.output
        assert t_ok.output == "4"


class TestSessionSurface:
    def test_feed_line_protocol(self, server):
        sess = server.open_session()
        assert sess.feed_line("(let ((a 2)") is None
        assert sess.pending_input
        ticket = sess.feed_line(" (b 3)) (+ a b))")
        assert ticket is not None
        server.flush()
        assert ticket.output == "5"

    def test_run_program_orders_forms(self, server):
        sess = server.open_session()
        tickets = sess.run_program("(setq x 2)\n(setq x (* x x))\nx")
        server.flush()
        assert [t.output for t in tickets] == ["2", "4", "4"]

    def test_named_sessions_and_duplicates(self, server):
        named = server.open_session("alice")
        assert named.session_id == "alice"
        with pytest.raises(ValueError):
            server.open_session("alice")

    def test_matches_dedicated_session_outputs(self, server):
        """A served tenant sees exactly what a private CuLiSession sees."""
        program = [
            "(defun sq (x) (* x x))",
            "(sq 12)",
            "(append '(a b) '(c))",
            "(||| 4 sq (1 2 3 4))",
        ]
        tenant = server.open_session()
        served = [tenant.eval(form) for form in program]
        with CuLiSession("gtx1080") as solo:
            dedicated = [solo.eval(form) for form in program]
        assert served == dedicated


class TestStatsAccounting:
    def test_request_and_batch_counters(self, server):
        sessions = [server.open_session() for _ in range(4)]
        for s in sessions:
            s.submit("(+ 1 1)")
        server.flush()
        stats = server.stats
        assert stats.requests_enqueued == 4
        assert stats.requests_completed == 4
        assert stats.errors == 0
        assert stats.batches == 1
        assert stats.mean_batch_size == 4
        assert stats.batch_size_max == 4

    def test_phase_totals_accumulate(self, server):
        sess = server.open_session()
        sess.eval("(+ 1 2)")
        t1 = server.stats.phase_totals.total_ms
        sess.eval("(* 3 4)")
        assert server.stats.phase_totals.total_ms > t1
        assert server.stats.phase_totals.parse_ms > 0
        assert server.stats.phase_totals.eval_ms > 0
        assert server.stats.phase_totals.print_ms > 0

    def test_throughput_and_utilization(self, server):
        sessions = [server.open_session() for _ in range(3)]
        for s in sessions:
            s.submit("(* 2 2)")
        server.flush()
        assert server.stats.throughput_rps > 0
        util = server.stats.utilization()
        assert util and all(0.0 <= u <= 1.0 for u in util.values())
        assert max(util.values()) == 1.0  # busiest device defines makespan

    def test_queue_depth_gauge(self, server):
        sess = server.open_session()
        sess.submit("1")
        sess.submit("2")
        depths = server.stats.queue_depths()
        assert sum(depths.values()) == 2
        server.flush()
        assert sum(server.stats.queue_depths().values()) == 0

    def test_error_counted(self, server):
        sess = server.open_session()
        sess.submit("(car 5)")
        server.flush()
        assert server.stats.errors == 1

    def test_snapshot_and_render(self, server):
        sess = server.open_session()
        sess.eval("(+ 1 1)")
        snap = server.stats.snapshot()
        assert snap["requests"]["completed"] == 1
        assert "gtx1080#0" in snap["devices"]
        assert "throughput" in server.stats.render()


class TestMultiDevice:
    def test_sessions_shard_across_devices(self):
        with CuLiServer(devices=["gtx480", "gtx480", "intel"]) as server:
            sessions = [server.open_session() for _ in range(6)]
            devices_used = {s.device_id for s in sessions}
            assert len(devices_used) == 3
            for i, s in enumerate(sessions):
                s.submit(f"(* {i} {i})")
            server.flush()
            assert [s.history[0].output for s in sessions] == [
                "0", "1", "4", "9", "16", "25",
            ]

    def test_cpu_only_pool_serves(self):
        with CuLiServer(devices=["intel"], max_batch=8) as server:
            tenants = [server.open_session() for _ in range(3)]
            for i, t in enumerate(tenants):
                t.submit(f"(setq me {i})")
            server.flush()
            assert [t.eval("me") for t in tenants] == ["0", "1", "2"]
