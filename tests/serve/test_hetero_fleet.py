"""Heterogeneous fleets: capability calibration, cost-aware placement,
per-device configs, cross-kind migration, and modeled-time rebalancing.

The tentpole contract: load is accounted in modeled milliseconds, so a
Tesla V100, a GTX 480, and a Xeon can shard one pool without the
policies treating their queues as equal. The legacy count-based
behaviour stays available as ``placement="count"`` and must keep
behaving exactly as before (the ablation the hetero bench diffs
against).
"""

from __future__ import annotations

import pytest

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDeviceConfig
from repro.gpu.device import GPUDeviceConfig
from repro.serve import (
    CuLiServer,
    DevicePool,
    capability_probe_ms,
    capability_score,
    generate_trace,
)

MIXED = ["gtx1080", "tesla-v100", "intel-e5-2620"]


class TestCapabilityCalibration:
    def test_probe_is_deterministic_and_cached(self):
        first = capability_probe_ms("gtx1080")
        assert first == capability_probe_ms("gtx1080")
        assert first > 0.0

    def test_registry_ordering_matches_the_model(self):
        """The calibrated ordering the specs docstring documents:
        CPUs beat every GPU on single-command interactive work (the
        paper's CPU-vs-GPU result), V100 beats the GTX 1080, and the
        small-but-high-clocked GTX 480 beats them all among GPUs."""
        ms = {
            name: capability_probe_ms(name)
            for name in (
                "gtx480", "gtx680", "gtx1080", "tesla-m40",
                "tesla-v100", "intel-e5-2620", "amd-6272",
            )
        }
        assert ms["intel-e5-2620"] < ms["amd-6272"] < ms["gtx480"]
        assert ms["gtx480"] < ms["tesla-v100"] < ms["gtx680"]
        assert ms["gtx680"] < ms["gtx1080"] < ms["tesla-m40"]

    def test_score_is_relative_to_gtx1080(self):
        assert capability_score("gtx1080") == pytest.approx(1.0)
        assert capability_score("tesla-v100") > 1.0
        assert capability_score("tesla-m40") < 1.0
        assert capability_score("intel-e5-2620") > 50.0

    def test_pooled_device_carries_capability(self):
        pool = DevicePool(MIXED)
        try:
            by_name = {d.name: d for d in pool.devices.values()}
            assert by_name["tesla-v100"].probe_ms == capability_probe_ms(
                "tesla-v100"
            )
            assert by_name["intel-e5-2620"].capability > by_name[
                "tesla-v100"
            ].capability > by_name["gtx1080"].capability
        finally:
            pool.close()


class TestCostPlacement:
    def test_empty_fleet_fills_fastest_first(self):
        pool = DevicePool(MIXED, placement="cost")
        try:
            assert pool.place_session().name == "intel-e5-2620"
        finally:
            pool.close()

    def test_sessions_balance_by_backlog_not_count(self):
        """On gtx1080 + Xeon the modeled-time equilibrium parks almost
        every idle session on the ~88x-faster CPU: the GPU's one-session
        demand already outweighs dozens of CPU sessions."""
        with CuLiServer(
            devices=["gtx1080", "intel-e5-2620"], placement="cost"
        ) as server:
            sessions = [server.open_session() for _ in range(12)]
            on_cpu = sum(
                1 for s in sessions if s.device_id.startswith("intel")
            )
            assert on_cpu >= 10
            # ...but never starves the GPU entirely: an idle device has
            # zero backlog, so it still absorbs a session.
            assert on_cpu < 12

    def test_count_mode_is_the_legacy_round_robin(self):
        with CuLiServer(
            devices=["gtx1080", "intel-e5-2620"], placement="count"
        ) as server:
            placements = [server.open_session().device_id for _ in range(4)]
            assert placements == [
                "gtx1080#0", "intel-e5-2620#1",
                "gtx1080#0", "intel-e5-2620#1",
            ]

    def test_placement_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PLACEMENT", "count")
        pool = DevicePool(["gtx1080", "intel-e5-2620"])
        try:
            assert pool.placement == "count"
            assert pool.place_session().name == "gtx1080"
        finally:
            pool.close()

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            DevicePool(["gtx1080"], placement="weird")

    def test_incoming_snapshot_bytes_weigh_the_pcie_leg(self):
        """A restore arriving with a fat heap prefers the free CPU link
        over an otherwise-equal PCIe device."""
        pool = DevicePool(["gtx1080", "intel-e5-2620"])
        try:
            devices = list(pool.devices.values())
            gpu = next(d for d in devices if d.kind == "gpu")
            cpu = next(d for d in devices if d.kind == "cpu")
            nbytes = 1 << 20
            assert gpu.restore_cost_ms(nbytes) > 0.0
            assert cpu.restore_cost_ms(nbytes) == 0.0
            key_gpu = gpu.placement_key(incoming_nbytes=nbytes)
            key_cpu = cpu.placement_key(incoming_nbytes=nbytes)
            assert key_cpu < key_gpu
        finally:
            pool.close()

    def test_restore_lands_fastest_capable_first(self):
        """Whole-fleet restore on a mixed pool places victims on the
        lowest-backlog (here: fastest) device."""
        with CuLiServer(devices=["gtx1080"]) as donor:
            session = donor.open_session("mover")
            session.eval("(setq keep (list 1 2 3))")
            saved = donor.save()
        with CuLiServer(devices=MIXED, placement="cost") as target:
            restored = target.restore(saved)
            assert restored["mover"].device_id.startswith("intel")
            assert restored["mover"].eval("(length keep)") == "3"


class TestPerDeviceConfigs:
    def test_each_slot_gets_its_own_arena(self):
        big = GPUDeviceConfig(
            interpreter=InterpreterOptions.fast(arena_capacity=100_000)
        )
        small = CPUDeviceConfig(
            interpreter=InterpreterOptions.fast(arena_capacity=20_000)
        )
        pool = DevicePool(
            ["gtx1080", "intel-e5-2620"], device_configs=[big, small]
        )
        try:
            by_name = {d.name: d for d in pool.devices.values()}
            assert by_name["gtx1080"].device.interp.arena.capacity == 100_000
            assert (
                by_name["intel-e5-2620"].device.interp.arena.capacity
                == 20_000
            )
        finally:
            pool.close()

    def test_none_slots_fall_back_to_shared_config(self):
        shared = GPUDeviceConfig(
            interpreter=InterpreterOptions.fast(arena_capacity=30_000)
        )
        pool = DevicePool(
            ["gtx1080", "gtx1080"],
            gpu_config=shared,
            device_configs=[
                None,
                GPUDeviceConfig(
                    interpreter=InterpreterOptions.fast(arena_capacity=50_000)
                ),
            ],
        )
        try:
            caps = sorted(
                d.device.interp.arena.capacity for d in pool.devices.values()
            )
            assert caps == [30_000, 50_000]
        finally:
            pool.close()

    def test_misaligned_configs_rejected(self):
        with pytest.raises(ValueError, match="align"):
            DevicePool(["gtx1080", "gtx1080"], device_configs=[None])

    def test_kind_mismatch_rejected(self):
        with pytest.raises(TypeError, match="kind mismatch"):
            DevicePool(
                ["gtx1080"],
                device_configs=[
                    CPUDeviceConfig(interpreter=InterpreterOptions.fast())
                ],
            )

    def test_revive_rebuilds_from_the_slot_config(self):
        override = GPUDeviceConfig(
            interpreter=InterpreterOptions.fast(arena_capacity=40_000)
        )
        pool = DevicePool(["gtx1080"], device_configs=[override])
        try:
            pdev = pool["gtx1080#0"]
            assert pdev.device.interp.arena.capacity == 40_000
            pool.revive("gtx1080#0")
            assert pdev.device.interp.arena.capacity == 40_000
            assert pdev.session_retained_nodes == 0
        finally:
            pool.close()

    def test_server_threads_device_configs(self):
        configs = [
            GPUDeviceConfig(
                interpreter=InterpreterOptions.fast(arena_capacity=60_000)
            ),
            None,
        ]
        with CuLiServer(
            devices=["gtx1080", "intel-e5-2620"], device_configs=configs
        ) as server:
            gpu = server.pool["gtx1080#0"]
            assert gpu.device.interp.arena.capacity == 60_000
            session = server.open_session()
            assert session.eval("(+ 1 2)") == "3"


class TestCrossKindMigration:
    """GPU->CPU and CPU->GPU session moves: asymmetric link charges
    (the CPU leg is free shared memory, the PCIe leg pays the model)
    and byte-identical restored state."""

    SCRIPT = [
        "(defun poly (x) (+ (* x x) (* 3 x) 7))",
        "(setq memo (list 10 20 30))",
        "(poly 5)",
        "(cons (poly 2) memo)",
    ]

    def _solo(self, device):
        with CuLiServer(devices=[device]) as server:
            session = server.open_session()
            return [session.eval(c) for c in self.SCRIPT]

    @pytest.mark.parametrize(
        "source,dest", [("gtx1080", "intel-e5-2620"), ("intel-e5-2620", "gtx1080")]
    )
    def test_cross_kind_move_is_transcript_invisible(self, source, dest):
        with CuLiServer(devices=[source, dest], placement="count") as server:
            session = server.open_session()
            assert session.device_id == f"{source}#0"
            outputs = [session.eval(c) for c in self.SCRIPT[:2]]
            record = session.migrate(f"{dest}#1")
            assert record.source == f"{source}#0"
            assert record.dest == f"{dest}#1"
            outputs += [session.eval(c) for c in self.SCRIPT[2:]]
        # Byte-identical to never-migrated runs on either device.
        assert outputs == self._solo(source) == self._solo(dest)

    def test_gpu_to_cpu_charges_only_the_pcie_leg(self):
        with CuLiServer(
            devices=["gtx1080", "intel-e5-2620"], placement="count"
        ) as server:
            session = server.open_session()   # -> gtx1080#0
            session.eval("(setq v (list 1 2 3 4))")
            record = session.migrate("intel-e5-2620#1")
            gpu_leg = server.pool["gtx1080#0"].device.spec.transfer_ms(
                record.nbytes
            )
            assert record.transfer_ms == pytest.approx(gpu_leg)
            # The CPU side contributed nothing.
            dstats = server.stats.per_device["intel-e5-2620#1"]
            assert dstats.busy_ms == 0.0

    def test_cpu_to_gpu_charges_only_the_pcie_leg(self):
        with CuLiServer(
            devices=["intel-e5-2620", "gtx1080"], placement="count"
        ) as server:
            session = server.open_session()   # -> intel#0
            session.eval("(setq v (list 1 2 3 4))")
            busy_before = server.stats.per_device["intel-e5-2620#0"].busy_ms
            record = session.migrate("gtx1080#1")
            gpu_leg = server.pool["gtx1080#1"].device.spec.transfer_ms(
                record.nbytes
            )
            assert record.transfer_ms == pytest.approx(gpu_leg)
            assert server.stats.per_device["intel-e5-2620#0"].busy_ms == (
                busy_before
            )


class TestCostRebalancing:
    def test_leveling_never_pulls_sessions_onto_a_slower_device(self):
        """The cost/benefit veto: a loaded Xeon next to an idle GTX 1080
        stays loaded — one session on the GPU costs more service time
        than all of them on the CPU — where count-mode leveling would
        shuffle sessions over."""
        with CuLiServer(
            devices=["intel-e5-2620", "gtx1080"],
            rebalance=True,
            placement="cost",
        ) as server:
            sessions = []
            for k in range(6):
                s = server.open_session(f"t{k}")
                # Pin everything onto the CPU regardless of placement.
                if not s.device_id.startswith("intel"):
                    server.migrate_session(s, "intel-e5-2620#0")
                sessions.append(s)
            migrations_before = server.stats.sessions_migrated
            for s in sessions:
                s.submit("(+ 1 2)")
            server.flush()
            assert server.stats.sessions_migrated == migrations_before

    def test_count_mode_levels_the_same_pool(self):
        """The ablation shows the contrast: count-based leveling happily
        moves sessions from the loaded CPU to the idle (slow) GPU."""
        with CuLiServer(
            devices=["intel-e5-2620", "gtx1080"],
            rebalance=True,
            placement="count",
        ) as server:
            sessions = []
            for k in range(6):
                s = server.open_session(f"t{k}")
                if not s.device_id.startswith("intel"):
                    server.migrate_session(s, "intel-e5-2620#0")
                sessions.append(s)
            migrations_before = server.stats.sessions_migrated
            for s in sessions:
                s.submit("(+ 1 2)")
            server.flush()
            assert server.stats.sessions_migrated > migrations_before

    def test_homogeneous_shedding_still_levels_queues(self):
        """On an equal-device pool the ms gates reduce to the original
        count gates: the deep-skew shedding test still fires."""
        with CuLiServer(
            devices=["gtx1080", "gtx1080"], rebalance=True, max_batch=8
        ) as server:
            heavy = [server.open_session(f"h{i}") for i in (0, 1)]
            for session in heavy:
                for k in range(6):
                    session.submit(f"(+ {k} 1)")
            if heavy[1].device_id != heavy[0].device_id:
                server.migrate_session(heavy[1], heavy[0].device_id)
            migrations_before = server.stats.sessions_migrated
            server.flush()
            assert server.pending == 0
            assert server.stats.sessions_migrated > migrations_before


class TestFleetMetrics:
    def test_utilization_spread_and_capability_reported(self):
        with CuLiServer(devices=MIXED) as server:
            sessions = [server.open_session() for _ in range(6)]
            for s in sessions:
                s.submit("(* 6 7)")
            server.flush()
            snap = server.stats.snapshot()
            assert snap["fleet"]["devices"] == 3
            spread = snap["fleet"]["utilization_spread"]
            assert 0.0 <= spread <= 1.0
            assert spread == server.stats.utilization_spread()
            for entry in snap["devices"].values():
                assert entry["capability_ms"] > 0.0
            rendered = server.stats.render()
            assert "utilization spread" in rendered
            assert "ms/req" in rendered

    def test_single_device_spread_is_zero(self):
        with CuLiServer(devices=["gtx1080"]) as server:
            session = server.open_session()
            session.eval("(+ 1 1)")
            assert server.stats.utilization_spread() == 0.0

    def test_pipeline_reports_engine_utilization(self):
        with CuLiServer(devices=["gtx1080"], scheduler="async") as server:
            session = server.open_session()
            for k in range(4):
                session.submit(f"(+ {k} 1)")
            server.flush()
            sched = server.stats.snapshot()["scheduler"]
            gauge = sched["devices"]["gtx1080#0"]
            assert gauge["engine_busy_ms"] > 0.0
            assert 0.0 < gauge["utilization"] <= 1.0


class TestZipfTrace:
    def test_zipf_is_heavy_tailed_but_clamped(self):
        trace = generate_trace(
            seed=3, tenants=400, requests=2_000, weighting="zipf"
        )
        counts: dict[int, int] = {}
        for req in trace:
            counts[req.tenant] = counts.get(req.tenant, 0) + 1
        # Every tenant appears (the long tail is sessions, not silence).
        assert len(counts) == 400
        head = max(counts.values())
        tail_median = sorted(counts.values())[len(counts) // 2]
        assert head >= 8 * tail_median      # genuinely heavy-tailed...
        assert head <= 0.02 * 2_000 + 1     # ...but clamped to ~2%

    def test_zipf_trace_is_seed_deterministic(self):
        a = generate_trace(seed=7, tenants=100, requests=500, weighting="zipf")
        b = generate_trace(seed=7, tenants=100, requests=500, weighting="zipf")
        assert a == b

    def test_zipf_emits_exactly_the_request_budget(self):
        # The old max(1, round(share)) per-tenant rounding drifted the
        # emitted count both above (forced tail 1s) and below (clipped
        # head mass) the budget; the apportionment is now exact.
        for tenants, requests in [(400, 2_000), (100, 5_000), (16, 64)]:
            trace = generate_trace(
                seed=3, tenants=tenants, requests=requests, weighting="zipf"
            )
            assert len(trace) == max(requests, tenants)

    def test_zipf_budget_exact_at_10k_tenants(self):
        # The roadmap-scale shape: 10k sessions sharing a 12k budget.
        trace = generate_trace(
            seed=2018,
            tenants=10_000,
            requests=12_000,
            duration_ms=5.0,
            weighting="zipf",
            zipf_exponent=1.1,
        )
        assert len(trace) == 12_000
        counts: dict[int, int] = {}
        for req in trace:
            counts[req.tenant] = counts.get(req.tenant, 0) + 1
        assert len(counts) == 10_000            # every tenant appears
        assert max(counts.values()) <= 240      # 2% head clamp holds

    def test_zipf_floor_when_tenants_exceed_requests(self):
        # requests < tenants: the one-request floor wins and the budget
        # is the tenant count, each exactly once.
        trace = generate_trace(
            seed=1, tenants=50, requests=10, weighting="zipf"
        )
        assert len(trace) == 50
        assert sorted({req.tenant for req in trace}) == list(range(50))

    def test_step_weighting_unchanged_by_default(self):
        a = generate_trace(seed=5, tenants=16, requests=128)
        b = generate_trace(seed=5, tenants=16, requests=128, weighting="step")
        assert a == b

    def test_unknown_weighting_rejected(self):
        with pytest.raises(ValueError, match="weighting"):
            generate_trace(weighting="uniform")
