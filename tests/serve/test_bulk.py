"""Bulk collection jobs: host-sharded gpu-map through the serving stack.

Serve-level mechanics — sharding, gathering, admission, coexistence,
fault containment, failover. The builtin itself is covered in
tests/core/builtins/test_parallel_builtin.py and the differential pins
in tests/properties/test_property_bulk.py.
"""

import pytest

from repro.errors import AdmissionError, EvalError
from repro.serve import CuLiServer, ChaosMonkey, split_list_text
from repro.serve.bulk import capability_shares
from repro.serve.traces import generate_trace, replay_trace


# ---------------------------------------------------------------------------
# The paren-aware gather splitter
# ---------------------------------------------------------------------------


class TestSplitListText:
    def test_flat(self):
        assert split_list_text("(1 4 9)") == ["1", "4", "9"]

    def test_nested_lists_stay_whole(self):
        assert split_list_text("((1 2) (3 4) 5)") == ["(1 2)", "(3 4)", "5"]

    def test_deeply_nested(self):
        assert split_list_text("(((a b)) c)") == ["((a b))", "c"]

    def test_empty_forms(self):
        assert split_list_text("nil") == []
        assert split_list_text("()") == []

    def test_whitespace_tolerant(self):
        assert split_list_text("  ( 1   2 )  ") == ["1", "2"]

    def test_non_list_rejected(self):
        with pytest.raises(EvalError, match="expected a list"):
            split_list_text("42")

    def test_unbalanced_rejected(self):
        with pytest.raises(EvalError, match="unbalanced"):
            split_list_text("((1 2)")


# ---------------------------------------------------------------------------
# Capability-weighted sharding
# ---------------------------------------------------------------------------


class TestCapabilityShares:
    def test_shares_sum_exactly(self):
        with CuLiServer(
            devices=["gtx1080", "tesla-m40", "intel-e5-2620"]
        ) as server:
            devices = list(server.pool.devices.values())
            for total in (0, 1, 7, 100, 999):
                shares = capability_shares(devices, total)
                assert sum(shares) == total

    def test_faster_device_gets_more(self):
        # A GTX 1080 outscores a Tesla M40 on the calibrated probe, so
        # it must absorb the larger contiguous range.
        with CuLiServer(devices=["gtx1080", "tesla-m40"]) as server:
            devices = list(server.pool.devices.values())
            fast, slow = (
                (devices[0], devices[1])
                if devices[0].probe_ms < devices[1].probe_ms
                else (devices[1], devices[0])
            )
            shares = dict(
                zip(
                    [d.device_id for d in devices],
                    capability_shares(devices, 1000),
                )
            )
            assert shares[fast.device_id] > shares[slow.device_id]

    def test_equal_devices_split_evenly(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            devices = list(server.pool.devices.values())
            assert capability_shares(devices, 100) == [50, 50]


# ---------------------------------------------------------------------------
# Shard → flush → gather
# ---------------------------------------------------------------------------


class TestBulkJob:
    def test_gather_in_element_order(self):
        with CuLiServer(
            devices=["gtx1080", "tesla-m40", "intel-e5-2620"]
        ) as server:
            out = server.gpu_map(
                "(lambda (x) (* x x))", list(range(1, 41)), chunk_elems=8
            )
            assert out == "(" + " ".join(
                str(x * x) for x in range(1, 41)
            ) + ")"

    def test_matches_single_device_gpu_map(self):
        elems = list(range(30))
        with CuLiServer(devices=["gtx1080"]) as solo:
            body = " ".join(str(e) for e in elems)
            want = solo.open_session().eval(
                f"(gpu-map (lambda (x) (+ (* x x) 1)) ({body}))"
            )
        with CuLiServer(devices=["gtx1080", "gtx1080", "tesla-m40"]) as fleet:
            got = fleet.gpu_map("(lambda (x) (+ (* x x) 1))", elems)
        assert got == want

    def test_nested_list_results_gather_whole(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            out = server.gpu_map("(lambda (x) (list x (* 2 x)))", [1, 2, 3])
            assert out == "((1 2) (2 4) (3 6))"

    def test_empty_elements(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            assert server.gpu_map("+", []) == "nil"

    def test_lockstep_parity(self):
        elems = list(range(64))
        outs = []
        for mode in ("async", "lockstep"):
            with CuLiServer(
                devices=["gtx1080", "tesla-m40"], scheduler=mode
            ) as server:
                outs.append(
                    server.gpu_map("(lambda (x) (+ x 7))", elems)
                )
        assert outs[0] == outs[1]

    def test_result_before_flush_raises(self):
        with CuLiServer(devices=["gtx1080"]) as server:
            job = server.submit_bulk("(lambda (x) x)", [1, 2, 3])
            with pytest.raises(RuntimeError, match="flush"):
                job.result()
            server.flush()
            assert job.result() == "(1 2 3)"

    def test_chunk_elems_controls_fanout(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            job = server.submit_bulk(
                "(lambda (x) x)", list(range(100)), chunk_elems=10
            )
            server.flush()
            assert len(job.chunks) == 10  # 50 elements/device, 10 per chunk
            starts = sorted(c.start for c in job.chunks)
            assert starts == list(range(0, 100, 10))

    def test_bulk_sessions_are_reused_across_jobs(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            server.gpu_map("(lambda (x) x)", list(range(10)))
            n_sessions = len(server.sessions)
            server.gpu_map("(lambda (x) (* x x))", list(range(10)))
            assert len(server.sessions) == n_sessions

    def test_admission_headroom_coalesces_chunks(self):
        # Asking for more chunks than the session queue cap holds must
        # coalesce into fewer, bigger chunks — not trip AdmissionError.
        with CuLiServer(
            devices=["gtx1080"], max_session_queue=4
        ) as server:
            job = server.submit_bulk(
                "(lambda (x) x)", list(range(64)), chunk_elems=1
            )
            assert len(job.chunks) == 4
            server.flush()
            assert job.result() == "(" + " ".join(map(str, range(64))) + ")"

    def test_no_headroom_at_all_is_refused(self):
        with CuLiServer(
            devices=["gtx1080"], max_session_queue=2
        ) as server:
            server.submit_bulk("(lambda (x) x)", [1, 2, 3], chunk_elems=1)
            with pytest.raises(AdmissionError, match="headroom"):
                server.submit_bulk("(lambda (x) x)", [4, 5, 6], chunk_elems=1)
            server.flush()  # drained, headroom restored
            assert server.gpu_map("(lambda (x) x)", [7]) == "(7)"


# ---------------------------------------------------------------------------
# Stats surface
# ---------------------------------------------------------------------------


class TestBulkStats:
    def test_snapshot_counters(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            job = server.submit_bulk(
                "(lambda (x) x)", list(range(40)), chunk_elems=10
            )
            server.flush()
            job.result()
            bulk = server.stats.snapshot()["bulk"]
            assert bulk["jobs"] == 1
            assert bulk["chunks"] == len(job.chunks) == 4
            assert bulk["elements"] == 40
            assert bulk["jobs_gathered"] == 1
            assert bulk["chunk_errors"] == 0

    def test_chunk_errors_counted_once(self):
        with CuLiServer(devices=["gtx1080"]) as server:
            job = server.submit_bulk("(lambda (x) (car x))", [1, 2])
            server.flush()
            with pytest.raises(EvalError):
                job.result()
            with pytest.raises(EvalError):
                job.result()  # re-reading must not double-count
            bulk = server.stats.snapshot()["bulk"]
            assert bulk["jobs_gathered"] == 1
            assert bulk["chunk_errors"] == 1

    def test_render_has_bulk_line(self):
        with CuLiServer(devices=["gtx1080"]) as server:
            server.gpu_map("(lambda (x) x)", [1, 2, 3])
            assert any(
                line.startswith("bulk:")
                for line in server.stats.render().splitlines()
            )


# ---------------------------------------------------------------------------
# Fault containment (PR 4 rules apply per chunk)
# ---------------------------------------------------------------------------


class TestBulkFaults:
    def test_failed_chunk_raises_with_range_context(self):
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            job = server.submit_bulk(
                "(lambda (x) (car x))", list(range(20)), chunk_elems=10
            )
            server.flush()
            assert not job.ok
            with pytest.raises(EvalError, match=r"chunk \[0:"):
                job.result()

    def test_sibling_chunks_still_complete(self):
        # One poisoned element range must not stop other ranges: mix a
        # fn that faults only on one value.
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            job = server.submit_bulk(
                "(lambda (x) (if (< x 0) (car x) (* x x)))",
                [1, 2, -1, 3],
                chunk_elems=1,
            )
            server.flush()
            good = [c for c in job.chunks if c.ok]
            bad = [c for c in job.chunks if not c.ok]
            assert len(bad) == 1 and bad[0].start == 2
            assert {c.ticket.output for c in good} == {"(1)", "(4)", "(9)"}
            assert len(job.errors) == 1

    def test_other_jobs_unaffected(self):
        with CuLiServer(devices=["gtx1080"]) as server:
            bad = server.submit_bulk("(lambda (x) (car x))", [1])
            good = server.submit_bulk("(lambda (x) (* x 3))", [1, 2, 3])
            server.flush()
            assert good.result() == "(3 6 9)"
            assert not bad.ok


# ---------------------------------------------------------------------------
# Coexistence: interactive SLOs ahead of co-running bulk
# ---------------------------------------------------------------------------


class TestCoexistence:
    def test_interactive_admits_ahead_of_queued_bulk(self):
        # max_batch=1 exposes pure EDF order: bulk chunks queued FIRST
        # (arrival 0, deadline +inf) must still resolve AFTER the
        # interactive request that arrived later with a tight deadline.
        with CuLiServer(
            devices=["gtx1080"], scheduler="async", max_batch=1
        ) as server:
            job = server.submit_bulk(
                "(lambda (x) x)",
                list(range(12)),
                chunk_elems=4,
                arrival_ms=0.0,
            )
            inter = server.open_session(name="fg", slo_ms=2.0)
            ticket = inter.submit("(+ 1 1)", arrival_ms=0.01)
            server.flush()
            assert ticket.ok and job.ok
            last_chunk = max(c.ticket.resolve_ms for c in job.chunks)
            assert ticket.resolve_ms < last_chunk

    def test_bulk_still_completes_under_interactive_load(self):
        # No starvation in the other direction: EDF ties break by
        # arrival, so bulk ages to the front between deadlines.
        with CuLiServer(devices=["gtx1080", "gtx1080"]) as server:
            job = server.submit_bulk(
                "(lambda (x) (* x x))", list(range(32)), chunk_elems=8
            )
            fg = server.open_session(slo_ms=5.0)
            tickets = [
                fg.submit(f"(+ {k} 1)", arrival_ms=float(k)) for k in range(8)
            ]
            server.flush()
            assert all(t.ok for t in tickets)
            assert job.result() == "(" + " ".join(
                str(x * x) for x in range(32)
            ) + ")"

    def test_mixed_trace_replay_with_bulk_forms(self):
        # The seeded mixed mode drives gpu-map texts through ordinary
        # tenant sessions — whole-stack replay, byte-deterministic.
        trace = generate_trace(
            seed=11,
            tenants=6,
            requests=48,
            gpu_map_share=0.5,
            gpu_map_elems=8,
        )
        assert any("(gpu-map" in r.text for r in trace)
        outs = []
        for _ in range(2):
            with CuLiServer(devices=["gtx1080", "tesla-m40"]) as server:
                _, tickets = replay_trace(server, trace)
                server.flush()
                assert all(t.done for t in tickets)
                outs.append([t.output for t in tickets])
        assert outs[0] == outs[1]


# ---------------------------------------------------------------------------
# Failover: in-flight bulk is replayable suffix work
# ---------------------------------------------------------------------------


class TestBulkFailover:
    def test_bulk_sessions_are_supervised(self):
        with CuLiServer(
            devices=["gtx1080", "gtx1080"], failover=True
        ) as server:
            job = server.submit_bulk("(lambda (x) x)", list(range(8)))
            server.flush()
            assert job.result() == "(" + " ".join(map(str, range(8))) + ")"
            # every bulk carrier session is checkpoint-tracked
            for session in server._bulk_sessions.values():
                assert server.supervisor.store.tracked(session.session_id)

    def test_bulk_survives_device_loss(self):
        # Chaos kills devices mid-drain; chunks ride the checkpoint /
        # replay machinery like any tenant request and the gather still
        # assembles the full, correctly ordered result.
        with CuLiServer(
            devices=["gtx1080", "gtx1080", "tesla-m40"],
            failover=True,
            chaos=ChaosMonkey(seed=5, kill_rate=0.15),
        ) as server:
            job = server.submit_bulk(
                "(lambda (x) (* x x))", list(range(60)), chunk_elems=6
            )
            server.flush()
            assert server.stats.devices_lost > 0  # chaos actually fired
            assert job.result() == "(" + " ".join(
                str(x * x) for x in range(60)
            ) + ")"
