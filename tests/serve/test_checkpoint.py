"""CheckpointStore: interval checkpoints, digest skipping, the suffix
log, and checkpoint-restore atomicity under arena exhaustion.

The atomicity suite is the satellite the failover tentpole leans on: a
mid-restore ``ArenaExhaustedError`` on a recovery target must leave that
device's arena exactly as it was (no half-installed bindings, no leaked
nodes) and the recovery must retry on another device — across all three
``gc_policy`` modes, literal included.
"""

from __future__ import annotations

import pytest

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDeviceConfig
from repro.gpu.device import GPUDeviceConfig
from repro.serve import CheckpointStore, CuLiServer

DEVICE = "gtx1080"


class TestCheckpointStoreUnit:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(interval=0)

    def test_suffix_log_and_due(self):
        store = CheckpointStore(interval=3)
        store.register("s")
        assert store.suffix("s") == []
        assert not store.due("s")
        store.record_completed("s", "(+ 1 1)")
        store.record_completed("s", "(+ 2 2)")
        assert store.rpo_rounds("s") == 2
        assert not store.due("s")
        store.record_completed("s", "(+ 3 3)")
        assert store.due("s")
        assert store.suffix("s") == ["(+ 1 1)", "(+ 2 2)", "(+ 3 3)"]

    def test_drop_forgets_everything(self):
        store = CheckpointStore(interval=1)
        store.register("s")
        store.record_completed("s", "x")
        store.drop("s")
        assert not store.tracked("s")
        assert store.get("s") is None
        assert store.suffix("s") == []

    def test_checkpoint_ships_then_skips_when_unchanged(self):
        """Two checkpoints of an unchanged heap: the second digest
        matches, nothing re-ships, but the suffix still resets."""
        with CuLiServer(devices=[DEVICE]) as server:
            session = server.open_session()
            session.eval("(setq x (list 1 2 3))")
            store = CheckpointStore(interval=1)
            store.register(session.session_id)
            store.record_completed(session.session_id, "(setq x (list 1 2 3))")
            snap1, shipped1 = store.checkpoint(session)
            assert shipped1 and store.checkpoints_taken == 1
            assert store.get(session.session_id) is snap1
            assert store.suffix(session.session_id) == []
            # A pure read leaves the persistent heap untouched.
            session.eval("(car x)")
            store.record_completed(session.session_id, "(car x)")
            _, shipped2 = store.checkpoint(session)
            assert not shipped2
            assert store.checkpoints_skipped == 1
            assert store.get(session.session_id) is snap1
            assert store.suffix(session.session_id) == []
            # A write changes the digest: the next checkpoint ships.
            session.eval("(setq x (list 9))")
            store.record_completed(session.session_id, "(setq x (list 9))")
            _, shipped3 = store.checkpoint(session)
            assert shipped3 and store.checkpoints_taken == 2
            assert store.checkpoint_bytes > 0


class TestIntervalCheckpointing:
    def test_checkpoints_fire_every_interval(self):
        with CuLiServer(
            devices=[DEVICE], failover=True, checkpoint_interval=3
        ) as server:
            session = server.open_session()
            for i in range(9):
                session.eval(f"(setq x {i})")
            store = server.supervisor.store
            assert store.checkpoints_taken + store.checkpoints_skipped == 3
            assert store.rpo_rounds(session.session_id) == 0

    def test_checkpoint_charges_the_gpu_link(self):
        """A shipped checkpoint's bytes are modeled device->host transfer
        (the clean-path overhead the failover bench bounds)."""
        with CuLiServer(
            devices=[DEVICE], failover=True, checkpoint_interval=1
        ) as server:
            session = server.open_session()
            session.eval("(setq x (list 1 2 3 4 5))")
            assert server.stats.checkpoints_shipped >= 1
            assert server.stats.checkpoint_bytes > 0
            assert server.stats.checkpoint_transfer_ms > 0.0

    def test_digest_skip_charges_nothing(self):
        """Read-only rounds between checkpoints re-ship nothing."""
        with CuLiServer(
            devices=[DEVICE], failover=True, checkpoint_interval=1
        ) as server:
            session = server.open_session()
            session.eval("(setq x 1)")
            shipped_before = server.stats.checkpoints_shipped
            bytes_before = server.stats.checkpoint_bytes
            session.eval("x")
            session.eval("(+ x 1)")
            assert server.stats.checkpoints_shipped == shipped_before
            assert server.stats.checkpoint_bytes == bytes_before
            assert server.stats.checkpoints_skipped >= 2

    def test_cpu_link_checkpoints_are_free(self):
        """CPU devices share memory with the host: shipping charges 0 ms
        (same rule as migrations and command transfers)."""
        with CuLiServer(
            devices=["intel-e5-2620"], failover=True, checkpoint_interval=1
        ) as server:
            session = server.open_session()
            session.eval("(setq x (list 1 2 3))")
            assert server.stats.checkpoints_shipped >= 1
            assert server.stats.checkpoint_transfer_ms == 0.0

    def test_device_fault_commands_stay_out_of_the_suffix(self):
        """A contained fault rolled its job's nursery back — there is no
        state to reproduce, so the command must not be replayed (an
        injected device-killer in the log would re-kill every recovery
        target it replays on)."""
        opts = InterpreterOptions.fast(enable_fault_injection=True)
        with CuLiServer(
            devices=[DEVICE],
            gpu_config=GPUDeviceConfig(interpreter=opts),
            cpu_config=CPUDeviceConfig(interpreter=opts),
            failover=True,
            checkpoint_interval=10,
        ) as server:
            session = server.open_session()
            session.eval("(setq x 1)")
            session.eval('(inject-fault "arena-exhausted")')
            # A Lisp-level error *does* replay: partial effects persist.
            session.eval("(car 5)")
            suffix = server.supervisor.store.suffix(session.session_id)
            assert "(setq x 1)" in suffix
            assert '(inject-fault "arena-exhausted")' not in suffix
            assert "(car 5)" in suffix


def _atomicity_server(gc_policy: str) -> CuLiServer:
    """Two devices with cramped arenas; ``gc_policy='literal'`` builds
    the paper-literal interpreter (fast_path=False + explicit configs)."""
    capacity = 700
    if gc_policy == "literal":
        opts = InterpreterOptions(arena_capacity=capacity)
        fast_path = False
    else:
        opts = InterpreterOptions.fast(
            gc_policy=gc_policy, arena_capacity=capacity
        )
        fast_path = True
    return CuLiServer(
        devices=[DEVICE, DEVICE],
        fast_path=fast_path,
        gpu_config=GPUDeviceConfig(interpreter=opts),
        cpu_config=CPUDeviceConfig(interpreter=opts),
        failover=True,
        checkpoint_interval=1,
        failover_config={"breaker_failures": 99},
    )


def _chunk(name: str, k: int = 100) -> str:
    return f"(setq {name} (list " + " ".join(str(i) for i in range(k)) + "))"


def _fill(victim, hoarder) -> None:
    """~200 retained nodes on the victim, ~400 on the hoarder: the
    hoarder's device then has too little arena headroom to also hold the
    victim's restored checkpoint, but plenty for its own evals."""
    victim.eval(_chunk("big1"))
    victim.eval(_chunk("big2"))
    for name in ("h1", "h2", "h3", "h4"):
        hoarder.eval(_chunk(name))


class TestRestoreAtomicity:
    """Mid-restore arena exhaustion on the recovery target: the target
    stays clean, the session retries on another device, co-tenants on
    the full device keep their state byte-for-byte."""

    @pytest.mark.parametrize("gc_policy", ["generational", "full", "literal"])
    def test_exhausted_target_is_left_clean_and_recovery_retries(
        self, gc_policy
    ):
        with _atomicity_server(gc_policy) as server:
            victim = server.open_session("victim")    # -> #0
            hoarder = server.open_session("hoarder")  # -> #1
            _fill(victim, hoarder)
            full_pdev = server.pool[hoarder.device_id]
            assert full_pdev.device_id != victim.device_id
            used_before = full_pdev.device.interp.arena.used
            server.supervisor.kill_device(victim.device_id, "test kill")
            # Recovery tried the surviving (full) device first, hit
            # ArenaExhaustedError mid-restore, cleaned up, and fell back
            # to the freshly revived device's empty arena.
            assert victim.session_id in server.sessions
            assert victim.device_id != full_pdev.device_id
            assert victim.eval("(car big1)") == "0"
            assert victim.eval("(length big2)") == "100"
            # Atomicity: the full device's arena holds exactly what it
            # held before the failed attempt — no orphans, no bindings.
            full_pdev.device.interp.collect_major()
            assert full_pdev.device.interp.arena.used == used_before
            # ... and the hoarder never noticed.
            assert hoarder.eval("(car h4)") == "0"

    @pytest.mark.parametrize("gc_policy", ["generational", "full", "literal"])
    def test_co_tenant_state_identical_after_failed_attempt(self, gc_policy):
        """The co-tenant on the exhausted target answers the same bytes
        after the failed restore as a run where no loss ever happened."""
        script = ["(car h1)", "(length h2)", "(setq tail (cdr h3))", "(car tail)"]
        with _atomicity_server(gc_policy) as server:
            victim = server.open_session("victim")
            hoarder = server.open_session("hoarder")
            _fill(victim, hoarder)
            server.supervisor.kill_device(victim.device_id, "test kill")
            disturbed = [hoarder.eval(c) for c in script]
        with _atomicity_server(gc_policy) as server:
            quiet_victim = server.open_session("victim")
            quiet = server.open_session("hoarder")
            _fill(quiet_victim, quiet)
            undisturbed = [quiet.eval(c) for c in script]
        assert disturbed == undisturbed
