"""Continuous batching mechanisms: the event timeline, EDF admission,
backpressure, safe-point hooks, and the latency surface.

The differential pins (async transcripts byte-identical to lockstep,
including under chaos and rebalancing) live in
``tests/properties/test_property_async.py``; this file tests the
machinery itself — where batches land on the modeled timeline, which
requests a batch admits and in what order, when submissions are
refused, and what the stats surface reports.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import AdmissionError
from repro.serve import (
    SCHEDULER_MODES,
    CuLiServer,
    DevicePipeline,
    LatencyReservoir,
    generate_trace,
    replay_trace,
)

DEVICE = "gtx1080"


# ---------------------------------------------------------------------------
# DevicePipeline: the virtual-time double-buffer model
# ---------------------------------------------------------------------------


class TestDevicePipeline:
    def test_first_batch_runs_serially(self):
        pipe = DevicePipeline()
        done = pipe.charge(0.0, upload_ms=2.0, kernel_ms=10.0, download_ms=1.0)
        assert done == pytest.approx(13.0)
        assert pipe.completed_ms == pytest.approx(13.0)
        # No prior kernel to hide under: pipelined == serial, zero overlap.
        assert pipe.serial_ms == pytest.approx(13.0)
        assert pipe.overlap_ms == pytest.approx(0.0)

    def test_upload_hides_under_previous_kernel(self):
        pipe = DevicePipeline()
        pipe.charge(0.0, upload_ms=2.0, kernel_ms=10.0, download_ms=1.0)
        done = pipe.charge(0.0, upload_ms=2.0, kernel_ms=10.0, download_ms=1.0)
        # Batch 2's upload runs on the up-link during batch 1's kernel
        # (up-link free at 2.0, kernel busy until 12.0): kernel 2 starts
        # the moment kernel 1 ends, so only the serial model pays the
        # second upload.
        slot = pipe.last
        assert slot.upload_start_ms == pytest.approx(2.0)
        assert slot.kernel_start_ms == pytest.approx(12.0)
        assert done == pytest.approx(23.0)
        assert pipe.serial_ms == pytest.approx(26.0)
        assert pipe.overlap_ms == pytest.approx(3.0)

    def test_full_duplex_link_downloads_do_not_block_uploads(self):
        pipe = DevicePipeline()
        pipe.charge(0.0, upload_ms=1.0, kernel_ms=1.0, download_ms=50.0)
        pipe.charge(0.0, upload_ms=1.0, kernel_ms=1.0, download_ms=1.0)
        slot = pipe.last
        # The huge result download of batch 1 occupies the down-link
        # only; batch 2's upload and kernel proceed underneath it.
        assert slot.kernel_start_ms == pytest.approx(2.0)
        # ...but the down-link itself is serial: batch 2's (tiny)
        # download queues behind batch 1's.
        assert slot.download_end_ms == pytest.approx(53.0)

    def test_floor_delays_every_phase(self):
        pipe = DevicePipeline()
        pipe.charge(5.0, upload_ms=1.0, kernel_ms=2.0, download_ms=1.0)
        assert pipe.last.upload_start_ms == pytest.approx(5.0)
        assert pipe.completed_ms == pytest.approx(9.0)

    def test_horizon_is_engine_or_uplink_availability(self):
        pipe = DevicePipeline()
        assert pipe.horizon_ms == pytest.approx(0.0)
        pipe.charge(0.0, upload_ms=3.0, kernel_ms=10.0, download_ms=20.0)
        # The next batch could start its kernel once engine frees at 13;
        # the slow download is invisible to admission.
        assert pipe.horizon_ms == pytest.approx(13.0)

    def test_zero_cost_batch_is_free(self):
        pipe = DevicePipeline()
        done = pipe.charge(7.0, 0.0, 0.0, 0.0)
        assert done == pytest.approx(7.0)
        assert pipe.overlap_ms == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Scheduler mode selection
# ---------------------------------------------------------------------------


class TestModeSelection:
    def test_default_is_async(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_ASYNC", raising=False)
        with CuLiServer(devices=[DEVICE]) as server:
            assert server.scheduler.mode == "async"

    def test_env_zero_selects_lockstep(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ASYNC", "0")
        with CuLiServer(devices=[DEVICE]) as server:
            assert server.scheduler.mode == "lockstep"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_ASYNC", "0")
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            assert server.scheduler.mode == "async"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            CuLiServer(devices=[DEVICE], scheduler="round-robin")
        assert SCHEDULER_MODES == ("lockstep", "async")

    def test_both_modes_serve_correctly(self):
        for mode in SCHEDULER_MODES:
            with CuLiServer(devices=[DEVICE], scheduler=mode) as server:
                session = server.open_session()
                assert session.eval("(+ 1 2)") == "3"
                assert session.eval("(setq x 10)") == "10"
                assert session.eval("(* x x)") == "100"


# ---------------------------------------------------------------------------
# EDF admission and ordering
# ---------------------------------------------------------------------------


class TestEDFBatchFormation:
    def test_deadline_order_beats_submission_order(self):
        """An SLO-bearing request jumps ahead of earlier bulk arrivals
        within one batch (order inside a batch is the order requests
        were packed, which is the EDF order)."""
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            bulk = server.open_session("bulk")            # no deadline
            urgent = server.open_session("urgent", slo_ms=1.0)
            bulk.submit("(+ 1 1)", arrival_ms=0.0)
            urgent.submit("(+ 2 2)", arrival_ms=0.0)
            pdev = server.pool[bulk.device_id]
            batch = server.scheduler.form_batch_async(pdev)
            assert [t.session.session_id for t in batch] == [
                urgent.session_id,
                bulk.session_id,
            ]
            # form_batch_async pops its picks: run them so nothing hangs.
            server.scheduler.dispatch(pdev, batch, server.stats)

    def test_bulk_ties_break_by_arrival_then_seq(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            a = server.open_session("a")
            b = server.open_session("b")
            tb = b.submit("(+ 2 2)", arrival_ms=0.0)
            ta = a.submit("(+ 1 1)", arrival_ms=0.0)
            pdev = server.pool[a.device_id]
            batch = server.scheduler.form_batch_async(pdev)
            # Equal (inf) deadlines and equal arrivals: global submission
            # order (seq) decides, so b's earlier submit wins.
            assert batch == [tb, ta]
            server.flush()

    def test_per_session_fifo_is_inviolable(self):
        """Only the head-of-line ticket per session is a candidate, so a
        later command can never overtake an earlier one from the same
        tenant — even when the later one's deadline is tighter."""
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session("s", slo_ms=5.0)
            first = session.submit("(setq x 1)", arrival_ms=0.0)
            second = session.submit("(setq x 2)", arrival_ms=0.0)
            pdev = server.pool[session.device_id]
            batch = server.scheduler.form_batch_async(pdev)
            assert batch == [first]
            server.flush()
            assert second.ok

    def test_future_arrivals_wait_behind_the_horizon(self):
        """A request that has not arrived by the admission horizon stays
        queued while arrived work is served."""
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            now_s = server.open_session("now")
            later_s = server.open_session("later")
            now = now_s.submit("(+ 1 1)", arrival_ms=0.0)
            later = later_s.submit("(+ 2 2)", arrival_ms=1e6)
            pdev = server.pool[now_s.device_id]
            batch = server.scheduler.form_batch_async(pdev)
            assert batch == [now]
            server.scheduler.dispatch(pdev, batch, server.stats)
            server.flush()  # jumps the horizon forward for `later`
            assert now.ok and later.ok
            assert later.resolve_ms >= 1e6

    def test_horizon_jumps_to_earliest_arrival_when_device_idle(self):
        """An all-future queue still yields a batch: the horizon jumps
        forward (the device sits idle until work arrives) instead of
        spinning or deadlocking."""
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session("s")
            ticket = session.submit("(+ 1 1)", arrival_ms=500.0)
            server.flush()
            assert ticket.ok
            assert ticket.resolve_ms >= 500.0
            assert server.scheduler.now_ms >= 500.0

    def test_degenerates_to_lockstep_batches_without_slos(self):
        """No SLOs, equal arrivals: EDF collapses to submission order and
        both formation walks pick the same batch — the anchor for the
        async==lockstep oracle property."""
        with CuLiServer(devices=[DEVICE], scheduler="async", max_batch=4) as server:
            sessions = [server.open_session(f"t{i}") for i in range(6)]
            for s in sessions:
                s.submit("(+ 1 1)", arrival_ms=0.0)
            pdev = server.pool[sessions[0].device_id]
            expected = [t.session.session_id for t in list(pdev.queue)[:4]]
            batch = server.scheduler.form_batch_async(pdev)
            assert [t.session.session_id for t in batch] == expected
            server.flush()


# ---------------------------------------------------------------------------
# Admission control (backpressure)
# ---------------------------------------------------------------------------


class TestAdmissionControl:
    def test_queue_cap_rejects_with_admission_error(self):
        with CuLiServer(
            devices=[DEVICE], scheduler="async", max_session_queue=3
        ) as server:
            session = server.open_session()
            for i in range(3):
                session.submit(f"(+ {i} 1)")
            with pytest.raises(AdmissionError, match="3"):
                session.submit("(+ 99 1)")
            assert server.stats.requests_rejected == 1
            # Draining releases the slots: submission works again.
            server.flush()
            assert session.pending == 0
            session.submit("(+ 99 1)")
            server.flush()

    def test_cap_is_per_session_not_global(self):
        with CuLiServer(
            devices=[DEVICE], scheduler="async", max_session_queue=1
        ) as server:
            a = server.open_session("a")
            b = server.open_session("b")
            a.submit("(+ 1 1)")
            b.submit("(+ 2 2)")  # b's own slot, not blocked by a
            with pytest.raises(AdmissionError):
                a.submit("(+ 3 3)")
            server.flush()

    def test_rejected_submission_leaves_no_ticket(self):
        with CuLiServer(
            devices=[DEVICE], scheduler="async", max_session_queue=1
        ) as server:
            session = server.open_session()
            session.submit("(+ 1 1)")
            before = server.stats.requests_enqueued
            with pytest.raises(AdmissionError):
                session.submit("(+ 2 2)")
            assert server.stats.requests_enqueued == before
            assert session.pending == 1
            server.flush()
            assert session.pending == 0

    def test_cap_applies_to_lockstep_too(self):
        with CuLiServer(
            devices=[DEVICE], scheduler="lockstep", max_session_queue=2
        ) as server:
            session = server.open_session()
            session.submit("(+ 1 1)")
            session.submit("(+ 2 2)")
            with pytest.raises(AdmissionError):
                session.submit("(+ 3 3)")
            server.flush()

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="max_session_queue"):
            CuLiServer(devices=[DEVICE], max_session_queue=0)


# ---------------------------------------------------------------------------
# The latency surface
# ---------------------------------------------------------------------------


class TestLatencyReservoir:
    def test_exact_percentiles_small_sample(self):
        res = LatencyReservoir()
        for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
            res.record(v)
        assert res.percentile(0) == 1.0
        assert res.percentile(50) == 3.0
        assert res.percentile(100) == 5.0
        assert res.mean == pytest.approx(3.0)
        assert res.max == 5.0
        assert res.count == 5

    def test_bounded_memory_exact_aggregates(self):
        res = LatencyReservoir(capacity=64)
        for i in range(10_000):
            res.record(float(i))
        assert len(res._samples) == 64
        assert res.count == 10_000
        assert res.max == 9999.0
        assert res.mean == pytest.approx(4999.5)

    def test_seeded_replacement_is_deterministic(self):
        a, b = LatencyReservoir(capacity=32), LatencyReservoir(capacity=32)
        for i in range(1000):
            a.record(float(i % 97))
            b.record(float(i % 97))
        assert a.snapshot() == b.snapshot()

    def test_empty_snapshot_is_zeros(self):
        snap = LatencyReservoir().snapshot()
        assert snap == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
            "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0,
        }


class TestLatencyAccounting:
    def test_every_completed_request_is_sampled(self):
        with CuLiServer(devices=[DEVICE] * 2, scheduler="async") as server:
            sessions = [server.open_session(f"t{i}") for i in range(4)]
            for s in sessions:
                for i in range(3):
                    s.submit(f"(+ {i} 1)")
            server.flush()
            snap = server.stats.snapshot()["latency"]
            assert snap["count"] == 12
            assert 0.0 <= snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]
            assert snap["p99_ms"] <= snap["max_ms"]

    def test_latency_measured_from_arrival(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session()
            ticket = session.submit("(+ 1 1)", arrival_ms=100.0)
            server.flush()
            assert ticket.resolve_ms >= 100.0
            latency = ticket.resolve_ms - ticket.arrival_ms
            assert server.stats.latency.max == pytest.approx(latency)

    def test_lockstep_charges_the_round_barrier(self):
        """Every ticket of a lockstep round resolves at the round's end:
        co-scheduled fast and slow requests share one resolve time."""
        with CuLiServer(devices=[DEVICE] * 2, scheduler="lockstep") as server:
            a = server.open_session("a")
            b = server.open_session("b")
            # Different devices (alternating placement), same round.
            ta = a.submit("(+ 1 1)")
            tb = b.submit("(length (list 1 2 3 4 5 6 7 8 9))")
            server.flush()
            assert ta.resolve_ms == tb.resolve_ms

    def test_async_resolves_per_device(self):
        """Per-device pipelines: co-round tickets on different devices
        resolve at their own batch completion, not a shared barrier."""
        with CuLiServer(devices=[DEVICE] * 2, scheduler="async") as server:
            a = server.open_session("a")
            b = server.open_session("b")
            ta = a.submit("(+ 1 1)")
            tb = b.submit("(length (list 1 2 3 4 5 6 7 8 9))")
            server.flush()
            assert ta.resolve_ms != tb.resolve_ms

    def test_render_includes_latency_and_scheduler_lines(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session()
            session.eval("(+ 1 2)")
            text = server.stats.render()
            assert "latency:" in text
            assert "p50" in text and "p99" in text
            assert "scheduler: async" in text
            assert "rejected" in text


# ---------------------------------------------------------------------------
# Scheduler timeline gauge
# ---------------------------------------------------------------------------


class TestSchedulerSnapshot:
    def test_snapshot_reports_pipelines(self):
        with CuLiServer(devices=[DEVICE] * 2, scheduler="async") as server:
            sessions = [server.open_session(f"t{i}") for i in range(4)]
            for s in sessions:
                for i in range(3):
                    s.submit(f"(* {i} {i})")
            server.flush()
            sched = server.stats.snapshot()["scheduler"]
            assert sched["mode"] == "async"
            assert sched["makespan_ms"] > 0.0
            assert len(sched["devices"]) == 2
            for dev in sched["devices"].values():
                assert dev["batches"] > 0
                assert dev["completed_ms"] <= dev["serial_ms"]

    def test_back_to_back_batches_overlap_transfers(self):
        """A device running several queued batches hides uploads under
        kernels: pipelined completion beats the serial clock."""
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session()
            items = " ".join(str(i) for i in range(64))
            for _ in range(6):
                session.submit(f"(length (list {items}))")
            server.flush()
            sched = server.stats.snapshot()["scheduler"]
            (dev,) = sched["devices"].values()
            assert dev["batches"] == 6
            assert dev["overlap_ms"] > 0.0
            assert dev["completed_ms"] < dev["serial_ms"]

    def test_lockstep_advances_the_round_clock(self):
        with CuLiServer(devices=[DEVICE], scheduler="lockstep") as server:
            session = server.open_session()
            session.eval("(+ 1 2)")
            sched = server.stats.snapshot()["scheduler"]
            assert sched["mode"] == "lockstep"
            assert sched["makespan_ms"] > 0.0
            assert sched["devices"] == {}


# ---------------------------------------------------------------------------
# Safe points: the between-rounds hooks under the async drain
# ---------------------------------------------------------------------------


class TestSafePoints:
    def test_interval_checkpoints_still_ship(self):
        with CuLiServer(
            devices=[DEVICE] * 2,
            scheduler="async",
            failover=True,
            checkpoint_interval=2,
        ) as server:
            session = server.open_session()
            session.eval("(setq x 1)")
            for i in range(6):
                session.eval(f"(setq x (+ x {i}))")
            assert server.stats.checkpoints_shipped > 0

    def test_rebalancer_still_fires_on_skew(self):
        with CuLiServer(
            devices=[DEVICE] * 2, scheduler="async", rebalance=True, max_batch=8
        ) as server:
            tenants = [server.open_session(f"t{i}") for i in range(8)]
            for r in range(3):
                for i, t in enumerate(tenants):
                    for c in range(4 if i % 2 == 0 else 1):
                        t.submit(f"(+ {r} (* {i} {c}))")
                server.flush()
            assert server.stats.sessions_migrated > 0
            for t in tenants:
                assert all(
                    not s.output.startswith("error:") for s in t.history
                )

    def test_pipeline_survives_device_reset(self):
        """A failover replaces the device object, not virtual time: the
        pipeline clock never rewinds across a loss."""
        from repro.serve import ChaosMonkey

        with CuLiServer(
            devices=[DEVICE] * 2,
            scheduler="async",
            failover=True,
            checkpoint_interval=1,
            chaos=ChaosMonkey(seed=7, kill_rate=0.2),
        ) as server:
            session = server.open_session()
            watermarks = []
            for i in range(12):
                session.eval(f"(+ {i} 1)")
                watermarks.append(server.scheduler.now_ms)
            assert watermarks == sorted(watermarks)


# ---------------------------------------------------------------------------
# The trace generator
# ---------------------------------------------------------------------------


class TestTraceGenerator:
    def test_same_seed_same_trace(self):
        a = generate_trace(seed=42, tenants=8, requests=64)
        b = generate_trace(seed=42, tenants=8, requests=64)
        assert a == b

    def test_different_seeds_differ(self):
        assert generate_trace(seed=1) != generate_trace(seed=2)

    def test_sorted_by_arrival(self):
        trace = generate_trace(seed=3, tenants=8, requests=64)
        arrivals = [r.arrival_ms for r in trace]
        assert arrivals == sorted(arrivals)

    def test_mixed_classes_and_slos(self):
        trace = generate_trace(seed=5, tenants=8, requests=64)
        classes = {r.tenant_class for r in trace}
        assert classes == {"interactive", "bulk"}
        for r in trace:
            if r.tenant_class == "interactive":
                assert r.slo_ms is not None and r.slo_ms > 0
            else:
                assert r.slo_ms is None

    def test_skew_concentrates_load_on_hot_tenants(self):
        trace = generate_trace(seed=7, tenants=16, requests=320, skew=4.0)
        per_tenant = {}
        for r in trace:
            per_tenant[r.tenant] = per_tenant.get(r.tenant, 0) + 1
        hot = sum(per_tenant.get(t, 0) for t in range(4))
        cold = sum(per_tenant.get(t, 0) for t in range(4, 16))
        # 4 hot tenants at 4x weight carry ~16/28 of the load: clearly
        # more per tenant than the 12 cold ones.
        assert hot / 4 > 2.0 * (cold / 12)

    def test_heavy_tail_present_in_bulk_only(self):
        trace = generate_trace(seed=9, tenants=8, requests=128, heavy_tail=0.5)
        heavy = [r for r in trace if len(r.text) > 80]
        assert heavy, "a 0.5 heavy-tail rate must draw some heavy forms"
        assert all(r.tenant_class == "bulk" for r in heavy)

    def test_replay_is_deterministic_and_complete(self):
        trace = generate_trace(seed=11, tenants=4, requests=32)
        outputs = []
        for _ in range(2):
            with CuLiServer(devices=[DEVICE] * 2, scheduler="async") as server:
                sessions, tickets = replay_trace(server, trace)
                assert len(sessions) == 4
                assert len(tickets) == len(trace)
                server.flush()
                assert all(t.done for t in tickets)
                outputs.append([t.output for t in tickets])
        assert outputs[0] == outputs[1]

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            generate_trace(tenants=0)
        with pytest.raises(ValueError):
            generate_trace(requests=0)


# ---------------------------------------------------------------------------
# Ticket deadline metadata
# ---------------------------------------------------------------------------


class TestTicketDeadlines:
    def test_slo_session_sets_finite_deadline(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session(slo_ms=5.0)
            ticket = session.submit("(+ 1 1)", arrival_ms=10.0)
            assert ticket.deadline_ms == pytest.approx(15.0)
            server.flush()

    def test_bulk_session_deadline_is_inf(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session()
            ticket = session.submit("(+ 1 1)")
            assert math.isinf(ticket.deadline_ms)
            server.flush()

    def test_default_arrival_is_the_virtual_now(self):
        with CuLiServer(devices=[DEVICE], scheduler="async") as server:
            session = server.open_session()
            session.eval("(+ 1 1)")  # advance the pipeline clock
            now = server.scheduler.now_ms
            assert now > 0.0
            ticket = session.submit("(+ 2 2)")
            assert ticket.arrival_ms == pytest.approx(now)
            server.flush()
