"""The JIT trace tier under the serving layer's failure machinery.

Two interactions the trace executor must not break:

* **Fault containment** — a containable device fault raised *mid-trace*
  (after traced side effects) must roll back the nursery and resolve
  only that tenant's ticket, exactly as it does mid-tree-walk, leaving
  co-tenants and the tenant's retained state byte-identical to a
  jit-off server.
* **Migration** — compiled traces belong to a device's parse cache, not
  to a session: a migrating session's snapshot never carries trace
  state, and its hot texts recompile from scratch on the destination
  while outputs stay byte-identical.
"""

from __future__ import annotations

import json

from repro.core.interpreter import InterpreterOptions
from repro.cpu.device import CPUDeviceConfig
from repro.errors import ArenaExhaustedError
from repro.gpu.device import GPUDeviceConfig
from repro.serve import CuLiServer

DEVICE = "gtx1080"

#: Hot text whose trace performs a side effect *before* faulting: the
#: rollback path must undo traced work exactly as it undoes walked work.
FAULTY_HOT = (
    '(progn (setq counter (+ counter 1)) (inject-fault "arena-exhausted"))'
)


def fault_server(jit: bool, **kwargs) -> CuLiServer:
    """A server whose interpreters have inject-fault and a hair-trigger
    JIT promotion threshold (so short tests heat traces)."""
    opts = InterpreterOptions.fast(
        enable_fault_injection=True, jit=jit, jit_threshold=1
    )
    kwargs.setdefault("devices", [DEVICE])
    kwargs.setdefault("max_batch", 16)
    return CuLiServer(
        gpu_config=GPUDeviceConfig(interpreter=opts),
        cpu_config=CPUDeviceConfig(interpreter=opts),
        **kwargs,
    )


def device_jit_stats(server: CuLiServer, device_id: str) -> dict:
    return server.pool[device_id].device.interp.jit_stats.as_dict()


class TestJitFaultContainment:
    def _run_faulty_session(self, jit: bool):
        """One tenant repeatedly runs the faulting hot text next to a
        healthy co-tenant; returns the observable transcript."""
        with fault_server(jit) as server:
            victim = server.open_session()
            bystander = server.open_session()
            assert victim.eval("(setq counter 0)") == "0"
            transcript = []
            for round_no in range(5):
                faulty = victim.submit(FAULTY_HOT)
                healthy = bystander.submit(f"(* {round_no} 7)")
                server.flush()
                transcript.append(
                    (
                        type(faulty.error).__name__,
                        healthy.output,
                        victim.eval("counter"),
                    )
                )
            snap = server.stats.snapshot()
            return transcript, snap

    def test_fault_mid_trace_contained_and_rolled_back(self):
        """The traced fault is contained per-tenant with the same
        rollback observables as the tree-walked fault."""
        jit_transcript, jit_snap = self._run_faulty_session(jit=True)
        walk_transcript, walk_snap = self._run_faulty_session(jit=False)
        # Every round: the victim's ticket resolves with the contained
        # error, the co-tenant's output is correct, and the session's
        # retained counter shows the identical rollback behaviour.
        assert jit_transcript == walk_transcript
        for error_name, healthy_out, _counter in jit_transcript:
            assert error_name == "ArenaExhaustedError"
            assert healthy_out is not None
        assert jit_snap["faults"]["contained"] == 5
        assert jit_snap["faults"]["batch_fatal"] == 0
        assert walk_snap["faults"]["contained"] == 5
        # The pin is not vacuous: the faulting text really ran traced
        # (threshold 1: every execution after the first one hits).
        assert jit_snap["jit"]["trace_hits"] >= 1
        assert walk_snap["jit"]["trace_hits"] == 0

    def test_traced_fault_spares_co_tenants_in_same_batch(self):
        """A 8-tenant batch where the hot faulting request runs traced:
        the other seven tickets resolve with correct outputs."""
        with fault_server(jit=True) as server:
            victim = server.open_session()
            others = [server.open_session() for _ in range(7)]
            victim.eval("(setq counter 0)")
            for _ in range(3):  # heat the faulting text itself
                ticket = victim.submit(FAULTY_HOT)
                server.flush()
                assert isinstance(ticket.error, ArenaExhaustedError)
            # The faulting text compiled (trace_hits counts only traces
            # that *complete*; this one faults mid-execution every time,
            # so compilation is the proof it runs on the trace tier).
            assert (
                device_jit_stats(server, victim.device_id)["traces_compiled"] >= 1
            )
            faulty = victim.submit(FAULTY_HOT)
            healthy = [
                session.submit(f"(+ {i} 100)") for i, session in enumerate(others)
            ]
            server.flush()
            assert isinstance(faulty.error, ArenaExhaustedError)
            for i, ticket in enumerate(healthy):
                assert ticket.ok and ticket.output == str(i + 100)
            # The device keeps serving traced work afterwards.
            assert victim.eval("(+ 20 22)") == "42"

    def test_device_survives_traced_fault_with_arena_clean(self):
        """After a traced contained fault the nursery region is closed
        (no region leak through the trace executor's abort path)."""
        with fault_server(jit=True) as server:
            session = server.open_session()
            session.eval("(setq counter 0)")
            for _ in range(4):
                session.submit(FAULTY_HOT)
                server.flush()
            pdev = server.pool[session.device_id]
            assert not pdev.device.interp.arena.region_active
            assert session.eval("(* 6 7)") == "42"


class TestJitMigration:
    HOT_SCRIPT = [
        "(defun step-up (x) (+ x 3))",
        "(setq acc 1)",
        "(setq acc (+ acc (step-up acc) 5))",
        "(setq acc (+ acc (step-up acc) 5))",
        "(setq acc (+ acc (step-up acc) 5))",
        "acc",
    ]

    def test_traces_recompile_on_destination(self):
        """Hot texts re-heat and recompile on the destination device's
        own parse cache; the trace itself never travels."""
        with fault_server(jit=True, devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.eval("(setq acc 0)")
            hot = "(setq acc (+ acc 1 2 3))"
            for _ in range(3):
                session.eval(hot)
            source_id = session.device_id
            source_stats = device_jit_stats(server, source_id)
            assert source_stats["traces_compiled"] >= 1
            assert source_stats["trace_hits"] >= 1

            session.migrate()
            dest_id = session.device_id
            assert dest_id != source_id
            # The destination has no trace (and no cached parse) for the
            # hot text yet — nothing was serialized across.
            dest_cache = server.pool[dest_id].device.interp.parse_cache
            assert hot not in dest_cache
            before = device_jit_stats(server, dest_id)
            for _ in range(3):
                session.eval(hot)
            after = device_jit_stats(server, dest_id)
            assert after["traces_compiled"] > before["traces_compiled"]
            assert after["trace_hits"] > before["trace_hits"]
            assert session.eval("acc") == "36"

    def test_migrated_outputs_byte_identical_to_solo_run(self):
        """The serving differential across a mid-script migration: the
        migrated session's transcript equals a never-migrated jit server
        *and* a jit-off server."""

        def run(devices, migrate_at=None, jit=True):
            with fault_server(jit=jit, devices=devices) as server:
                session = server.open_session()
                outputs = []
                for i, command in enumerate(self.HOT_SCRIPT):
                    if i == migrate_at:
                        session.migrate()
                    outputs.append(session.eval(command))
                return outputs

        migrated = run([DEVICE, DEVICE], migrate_at=3)
        solo_jit = run([DEVICE])
        solo_walk = run([DEVICE], jit=False)
        assert migrated == solo_jit == solo_walk

    def test_snapshot_payload_carries_no_trace_state(self):
        """The fleet save payload (the same snapshot format migration
        uses) holds node/binding rows only — no trace or template state
        that could leak one device's compiled code onto another."""
        with fault_server(jit=True) as server:
            session = server.open_session()
            session.eval("(setq acc 0)")
            for _ in range(3):
                session.eval("(setq acc (+ acc 1 2 3))")
            assert device_jit_stats(server, session.device_id)["trace_hits"] >= 1
            payload = json.dumps(server.save())
            assert "trace" not in payload
            assert "jit" not in payload

    def test_queued_traced_tickets_execute_on_destination(self):
        """Tickets queued behind a migration run on the destination and
        still produce traced, correct results."""
        with fault_server(jit=True, devices=[DEVICE, DEVICE]) as server:
            session = server.open_session()
            session.eval("(setq acc 0)")
            hot = "(setq acc (+ acc 10))"
            for _ in range(2):
                session.eval(hot)
            queued = [session.submit(hot) for _ in range(3)]
            session.migrate()
            dest_id = session.device_id
            server.flush()
            assert [ticket.output for ticket in queued] == ["30", "40", "50"]
            assert device_jit_stats(server, dest_id)["trace_hits"] >= 1
