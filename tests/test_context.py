"""Execution contexts (repro.context)."""

from repro.context import CountingContext, NullContext
from repro.gpu.cache import SetAssociativeCache
from repro.ops import Op, Phase


class TestNullContext:
    def test_charge_is_noop(self):
        ctx = NullContext()
        ctx.charge(Op.ALU, 1000)
        assert not ctx.charging_enabled

    def test_touch_memory_is_noop(self):
        NullContext().touch_memory(123, 4)

    def test_carries_depth_and_thread(self):
        ctx = NullContext(max_depth=7, thread_id=3)
        assert ctx.max_depth == 7
        assert ctx.thread_id == 3


class TestCountingContext:
    def test_charges_into_current_phase(self):
        ctx = CountingContext()
        ctx.set_phase(Phase.PARSE)
        ctx.charge(Op.CHAR_LOAD, 5)
        ctx.set_phase(Phase.PRINT)
        ctx.charge(Op.CHAR_STORE, 3)
        assert ctx.counts.count_of(Op.CHAR_LOAD, Phase.PARSE) == 5
        assert ctx.counts.count_of(Op.CHAR_LOAD, Phase.PRINT) == 0
        assert ctx.counts.count_of(Op.CHAR_STORE, Phase.PRINT) == 3

    def test_reset_clears_counts_and_extra(self):
        ctx = CountingContext(miss_penalty=10.0)
        ctx.charge(Op.ALU)
        ctx.extra_cycles[ctx.phase] = 99.0
        ctx.reset()
        assert ctx.counts.total_count() == 0
        assert sum(ctx.extra_cycles) == 0

    def test_snapshot_is_copy(self):
        ctx = CountingContext()
        ctx.charge(Op.ALU)
        snap = ctx.snapshot()
        ctx.charge(Op.ALU)
        assert snap.count_of(Op.ALU) == 1
        assert ctx.counts.count_of(Op.ALU) == 2

    def test_cache_miss_penalty_accrues_per_phase(self):
        cache = SetAssociativeCache(64)
        ctx = CountingContext(cache=cache, miss_penalty=50.0)
        ctx.set_phase(Phase.PARSE)
        ctx.touch_memory(0)       # miss
        ctx.touch_memory(0)       # hit
        ctx.set_phase(Phase.PRINT)
        ctx.touch_memory(100_000)  # miss in another phase
        assert ctx.extra_cycles[Phase.PARSE] == 50.0
        assert ctx.extra_cycles[Phase.PRINT] == 50.0
        assert ctx.extra_cycles[Phase.EVAL] == 0.0

    def test_no_cache_no_penalty(self):
        ctx = CountingContext(miss_penalty=50.0)
        ctx.touch_memory(0)
        assert sum(ctx.extra_cycles) == 0.0
