"""Unit and regression tests for the trace tier itself: what compiles,
what bails, how guards fall back, and how the parse cache owns traces.

The differential property suite pins *behaviour*; this file pins the
*mechanism* — specific compile-bail reasons, guard-bail fallbacks after
redefinitions, the loud mid-trace invalidation corner, and the eviction
regression where a recycled cache key must never serve a stale trace.
"""

from __future__ import annotations

import pytest

from repro.context import CountingContext, NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.errors import ArityError, LispError
from repro.jit import (
    SPECIALS,
    TOp,
    TraceInvalidatedError,
    compile_form,
)
from repro.ops import Op


def jit_interp(threshold: int = 1, capacity: int = 64) -> Interpreter:
    return Interpreter(
        InterpreterOptions.fast(
            jit=True, jit_threshold=threshold, parse_cache_capacity=capacity
        )
    )


def template_of(interp: Interpreter, source: str):
    """Snapshot ``source``'s first top-level form as a cache template
    (what the compiler consumes). Runs the text once — the cache entry
    is populated at parse time, before any evaluation error."""
    ctx = NullContext(max_depth=256)
    try:
        interp.process(source, ctx)
    except LispError:
        interp.abort_command()
    entry = interp.parse_cache._entries[source]
    return entry.templates[0]


def compiled(interp: Interpreter, source: str):
    return compile_form(template_of(interp, source), interp)


class TestCompiler:
    def test_traceable_form_shapes(self):
        interp = jit_interp()
        for source in (
            "(+ 1 2)",
            "(setq x (* 2 3) y 4)",
            "(if (> a 1) (+ a 1) (- a 1))",
            "(progn 1 2 (+ 3 4))",
            "(and 1 (or x 2))",
            "(quote (a b c))",
            "()",
            "42",
            "just-a-symbol",
            "(user-fn 1 2 3)",  # unknown head: traced as a call guard
        ):
            assert compiled(interp, source) is not None, source

    def test_ret_is_always_last(self):
        interp = jit_interp()
        trace = compiled(interp, "(if 1 (+ 1 2) 3)")
        assert trace.instrs[-1].op == TOp.RET
        assert all(ins.op != TOp.RET for ins in trace.instrs[:-1])

    def test_compile_bails(self):
        interp = jit_interp()
        for source in (
            "(while (> x 0) (setq x (- x 1)))",  # node-level control flow
            "(cond ((> x 1) 2))",
            "(defun f (x) x)",                   # definitions stay walked
            "(lambda (x) x)",
            "(let ((x 1)) x)",
            "(mapcar f xs)",                     # higher-order family
            "(funcall f 1)",
            "((lambda (x) x) 1)",                # non-symbol head
            "(quote 1 2)",                       # malformed special shapes
            "(setq x)",
            "(setq 5 1)",
            "(if 1)",
            "(+ (setq - 9) (- 1))",              # setq target collides with head
            "(car)",                             # static arity violation
            "(car 1 2)",
        ):
            assert compiled(interp, source) is None, source

    def test_empty_list_compiles_to_pushnil(self):
        interp = jit_interp()
        trace = compiled(interp, "()")
        assert [ins.op for ins in trace.instrs] == [TOp.PUSHNIL, TOp.RET]

    def test_specials_all_guarded(self):
        """Every structurally-compiled special head gets a guard slot."""
        interp = jit_interp()
        trace = compiled(interp, "(progn (setq x (if 1 2 3)) (and x (or x 1)))")
        guarded = {slot.name for slot in trace.heads if slot.expect}
        assert guarded == {"progn", "setq", "if", "and", "or"}
        assert guarded <= SPECIALS

    def test_head_slots_deduplicated(self):
        interp = jit_interp()
        trace = compiled(interp, "(+ (+ 1 2) (+ 3 4) (+ 5 6))")
        assert len([s for s in trace.heads if s.name == "+"]) == 1


class TestGuardBailRegressions:
    """Redefining a name a compiled trace depends on must fall back to
    the tree-walker (or re-resolve) with correct results — never run a
    stale target and never crash."""

    def run_all(self, commands: list) -> list:
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=1024)
        return [interp.process(command, ctx) for command in commands]

    def check_against_treewalk(self, commands: list) -> list:
        jit_out = self.run_all(commands)
        walk = Interpreter(InterpreterOptions.fast())
        ctx = NullContext(max_depth=1024)
        walk_out = [walk.process(command, ctx) for command in commands]
        assert jit_out == walk_out
        return jit_out

    def test_defun_redefinition_is_picked_up(self):
        """Preflight re-resolves by name each run: a same-name defun
        swap changes the traced call's behaviour immediately."""
        out = self.check_against_treewalk(
            [
                "(defun f (x) (+ x 1))",
                "(f 10)", "(f 10)", "(f 10)",   # heat: trace through N_FORM f
                "(defun f (x) (* x 2))",
                "(f 10)",
            ]
        )
        assert out[1:4] == ["11", "11", "11"]
        assert out[-1] == "20"

    def test_defun_redefined_as_macro_bails(self):
        """An N_MACRO target fails the call-head guard: the hot text
        falls back to the tree-walker and expands the macro correctly."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=1024)
        commands = [
            "(defun g (x) (+ x 1))",
            "(g 4)", "(g 4)", "(g 4)",
            "(defmacro g (x) (list (quote *) x x))",
            "(g 4)",
        ]
        outputs = [interp.process(command, ctx) for command in commands]
        assert outputs[1:4] == ["5", "5", "5"]
        assert outputs[-1] == "16"
        assert interp.jit_stats.trace_hits >= 1
        assert interp.jit_stats.guard_bails >= 1

    def test_arity_change_matches_treewalk_error(self):
        """Same-name redefinition with a new arity: the traced call must
        raise the same Lisp-level error the tree-walker raises."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=1024)
        for command in (
            "(defun h (x) x)",
            "(h 1)", "(h 1)", "(h 1)",
            "(defun h (x y) (+ x y))",
        ):
            interp.process(command, ctx)
        with pytest.raises(ArityError):
            interp.process("(h 1)", ctx)
        interp.abort_command()
        assert interp.process("(h 1 2)", ctx) == "3"

    def test_unbound_head_heats_then_traces_after_defun(self):
        """A call to a not-yet-defined function bails (late binding
        prints the form) until the defun lands; then the same text runs
        traced with the new binding — no recompilation needed."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=1024)
        assert interp.process("(mystery 2)", ctx) == "(mystery 2)"
        assert interp.process("(mystery 2)", ctx) == "(mystery 2)"
        bails_before = interp.jit_stats.guard_bails
        assert bails_before >= 1
        interp.process("(defun mystery (x) (* x 21))", ctx)
        hits_before = interp.jit_stats.trace_hits
        assert interp.process("(mystery 2)", ctx) == "42"
        assert interp.jit_stats.trace_hits == hits_before + 1

    def test_builtin_shadowed_by_form_uses_form(self):
        """Session scope can shadow a builtin with a defun; the trace's
        preflight resolves the nearest binding, like the tree-walker."""
        self.check_against_treewalk(
            [
                "(+ 1 2)", "(+ 1 2)", "(+ 1 2)",
                "(defun plus2 (a b) (* a b))",
                "(plus2 1 2)", "(plus2 3 4)", "(plus2 3 4)",
            ]
        )

    def test_mid_trace_rebind_raises_loudly(self):
        """The documented corner (DESIGN.md deviation #10): a traced
        form whose user-form call rebinds a *later* head of the same
        trace fails loudly instead of running a stale target."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=1024)
        interp.process("(defun sneaky (x) (defun tail-fn (y) (* y 9)))", ctx)
        interp.process("(defun tail-fn (y) (+ y 1))", ctx)
        hot = "(progn (sneaky 0) (tail-fn 1))"
        # First sighting compiles; executions afterwards run traced and
        # hit the rebinding mid-trace.
        with pytest.raises(TraceInvalidatedError):
            for _ in range(3):
                interp.process(hot, ctx)
                interp.collect_garbage()
        interp.abort_command()
        # The session survives and the rebound function is live.
        assert interp.process("(tail-fn 1)", ctx) == "9"


class TestTraceChargesOnlyWhenRunning:
    def test_traced_run_charges_trace_steps(self):
        interp = jit_interp(threshold=1)
        ctx = CountingContext(max_depth=256)
        interp.process("(+ 1 2)", ctx)
        assert ctx.counts.count_of(Op.TRACE_STEP) == 0  # populating miss
        interp.process("(+ 1 2)", ctx)
        assert ctx.counts.count_of(Op.TRACE_STEP) > 0
        assert ctx.counts.count_of(Op.GUARD_CHECK) > 0

    def test_cold_threshold_never_charges(self):
        interp = Interpreter(
            InterpreterOptions.fast(jit=True, jit_threshold=10**9)
        )
        ctx = CountingContext(max_depth=256)
        for _ in range(5):
            interp.process("(+ 1 2)", ctx)
        assert ctx.counts.count_of(Op.TRACE_STEP) == 0
        assert ctx.counts.count_of(Op.GUARD_CHECK) == 0


class TestParseCacheTraceOwnership:
    """Satellite regression: traces live on the CacheEntry, so eviction
    and re-population drop them with the templates — a recycled key can
    never serve a stale trace for different source text."""

    def entry(self, interp, text):
        return interp.parse_cache._entries.get(text)

    def test_eviction_drops_compiled_traces(self):
        interp = jit_interp(threshold=1, capacity=2)
        ctx = NullContext(max_depth=256)
        hot = "(+ 1 2)"
        interp.process(hot, ctx)
        interp.process(hot, ctx)
        assert self.entry(interp, hot).traces is not None
        compiled_before = interp.jit_stats.traces_compiled
        # Two fresh texts evict the hot entry (capacity 2, LRU).
        interp.process("(+ 3 4)", ctx)
        interp.process("(+ 5 6)", ctx)
        assert self.entry(interp, hot) is None
        # Re-running the text re-parses, re-heats, and re-compiles.
        assert interp.process(hot, ctx) == "3"
        assert interp.process(hot, ctx) == "3"
        assert interp.jit_stats.traces_compiled > compiled_before

    def test_entry_reuse_counts_and_threshold(self):
        """Default threshold 3: miss + two hits -> third sighting runs
        traced; until then the tree-walker runs and no trace exists."""
        interp = jit_interp(threshold=3)
        ctx = CountingContext(max_depth=256)
        interp.process("(* 2 3)", ctx)
        interp.process("(* 2 3)", ctx)
        assert ctx.counts.count_of(Op.TRACE_STEP) == 0
        assert interp.jit_stats.traces_compiled == 0
        interp.process("(* 2 3)", ctx)
        assert interp.jit_stats.traces_compiled == 1
        assert ctx.counts.count_of(Op.TRACE_STEP) > 0

    def test_untraceable_text_marks_failure_once(self):
        """A hot-but-untraceable text records trace_failed so the
        compiler runs once per cached text, not once per request."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=256)
        text = "(let ((x 1)) x)"
        for _ in range(4):
            assert interp.process(text, ctx) == "1"
        entry = self.entry(interp, text)
        assert entry.trace_failed
        assert interp.jit_stats.traces_compiled == 0
        assert interp.jit_stats.trace_hits == 0

    def test_mixed_command_traces_only_traceable_forms(self):
        """A multi-form command traces the flat forms and walks the
        rest, step by step, with correct combined output."""
        interp = jit_interp(threshold=1)
        ctx = NullContext(max_depth=256)
        text = "(setq a 5) (let ((b 2)) (+ a b)) (* a 2)"
        first = interp.process(text, ctx)
        second = interp.process(text, ctx)
        assert first == second == "5 7 10"
        assert interp.jit_stats.trace_hits >= 1

    def test_jit_requires_parse_cache(self):
        with pytest.raises(ValueError):
            Interpreter(InterpreterOptions(jit=True))
