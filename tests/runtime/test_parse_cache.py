"""ParseCache: memoized parse trees must be cheaper than re-parsing and
must never share structure between requests."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.nodes import NodeType
from repro.ops import Op, Phase
from repro.runtime.parse_cache import ParseCache


def make_interp(capacity: int = 8) -> Interpreter:
    return Interpreter(
        options=InterpreterOptions(parse_cache_capacity=capacity)
    )


class TestCacheMechanics:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ParseCache(0)

    def test_hit_after_miss(self):
        interp = make_interp()
        ctx = NullContext()
        interp.parse_source("(+ 1 2)", ctx)
        assert interp.parse_cache.stats.misses == 1
        interp.parse_source("(+ 1 2)", ctx)
        assert interp.parse_cache.stats.hits == 1
        assert interp.parse_cache.stats.hit_rate == 0.5

    def test_lru_eviction(self):
        interp = make_interp(capacity=2)
        ctx = NullContext()
        interp.parse_source("(+ 1 1)", ctx)
        interp.parse_source("(+ 2 2)", ctx)
        interp.parse_source("(+ 1 1)", ctx)  # refresh the first entry
        interp.parse_source("(+ 3 3)", ctx)  # evicts (+ 2 2)
        cache = interp.parse_cache
        assert "(+ 1 1)" in cache and "(+ 3 3)" in cache
        assert "(+ 2 2)" not in cache
        assert cache.stats.evictions == 1

    def test_materialized_tree_matches_fresh_parse(self):
        interp = make_interp()
        ctx = NullContext()
        (first,) = interp.parse_source("(alpha (1 2.5) \"s\" nil T)", ctx)
        (second,) = interp.parse_source("(alpha (1 2.5) \"s\" nil T)", ctx)
        assert first is not second  # a private copy, never the template

        def shape(node):
            return (
                node.ntype,
                node.ival,
                node.fval,
                node.sval,
                node.sealed,
                node.linked,
                [shape(kid) for kid in node.children()],
            )

        assert shape(first) == shape(second)

    def test_gc_cannot_corrupt_templates(self):
        """Templates live outside the arena: collecting every request's
        garbage must not disturb later materializations."""
        interp = make_interp()
        ctx = NullContext()
        out1 = interp.process("(* 6 7)", ctx)
        interp.collect_garbage()
        out2 = interp.process("(* 6 7)", ctx)
        interp.collect_garbage()
        assert out1 == out2 == "42"

    def test_hit_charges_less_than_parse(self):
        """The point of the cache: a hit's PARSE-phase cycles are node
        copies, not CHAR_LOADs — far cheaper on parse-bound devices."""
        interp = make_interp()
        text = "(defun loop-sum (n acc) (if (< n 1) acc (loop-sum (- n 1) (+ acc n))))"

        miss_ctx = CountingContext()
        miss_ctx.set_phase(Phase.PARSE)
        interp.parse_source(text, miss_ctx)

        hit_ctx = CountingContext()
        hit_ctx.set_phase(Phase.PARSE)
        interp.parse_source(text, hit_ctx)

        assert miss_ctx.counts.count_of(Op.CHAR_LOAD) > len(text) - 1
        assert hit_ctx.counts.count_of(Op.CHAR_LOAD) == 0
        assert hit_ctx.counts.count_of(Op.PARSE_STEP) == 0
        assert hit_ctx.counts.count_of(Op.NODE_ALLOC) > 0

    def test_disabled_by_default(self):
        interp = Interpreter()
        assert interp.parse_cache is None


class TestNoLeakBetweenRequests:
    def test_results_do_not_alias_cached_trees(self):
        """Evaluating a materialized tree links its nodes into result
        lists; the next request must still see the original program."""
        interp = make_interp()
        ctx = NullContext()
        # The quoted list is returned (and linked) as the result.
        for _ in range(3):
            assert interp.process("'(1 2 3)", ctx) == "(1 2 3)"
            interp.collect_garbage()

    def test_redefinition_uses_private_body(self):
        interp = make_interp()
        ctx = NullContext()
        define = "(defun f (x) (+ x 1))"
        interp.process(define, ctx)
        assert interp.process("(f 1)", ctx) == "2"
        interp.collect_garbage()
        # Redefine through the cache hit; the old form becomes garbage.
        interp.process(define, ctx)
        interp.collect_garbage()
        assert interp.process("(f 1)", ctx) == "2"

    def test_env_sensitivity_preserved(self):
        """The same cached text must evaluate against each request's own
        environment, not capture the first one."""
        interp = make_interp()
        ctx = NullContext()
        assert interp.process("x", ctx) == "x"  # unbound: late binding
        interp.process("(setq x 5)", ctx)
        assert interp.process("x", ctx) == "5"  # same text, new meaning

    def test_uncacheable_trees_are_skipped(self):
        cache = ParseCache(4)
        interp = Interpreter()
        ctx = NullContext()
        form = interp.arena.alloc(NodeType.N_FORM, ctx).seal()
        assert cache.put("(weird)", [form]) is False
        assert "(weird)" not in cache
        assert cache.stats.uncacheable == 1
