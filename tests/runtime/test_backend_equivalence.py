"""The same CuLi program must produce identical output on every backend
(GPU simulator, CPU model, bare sequential interpreter) — only the
timing differs. This is the paper's own property: one code base, two
builds."""

import pytest

from repro.context import NullContext
from repro.core.interpreter import Interpreter
from repro.runtime.session import CuLiSession

PROGRAMS = [
    # (program forms, expected final output)
    (["(+ 1 2 3)"], "6"),
    (["(* 2 (+ 4 3) 6)"], "84"),
    (
        [
            "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
            "(||| 6 fib (1 2 3 4 5 6))",
        ],
        "(1 1 2 3 5 8)",
    ),
    (["(||| 3 + (1 2 3) (4 5 6))"], "(5 7 9)"),
    (
        [
            "(defun compose2 (x) (car (cdr (list x (* x x)))))",
            "(||| 4 compose2 (2 3 4 5))",
        ],
        "(4 9 16 25)",
    ),
    (["(setq s 0)", "(dotimes (i 10) (setq s (+ s i)))", "s"], "45"),
    (
        [
            "(defmacro unless2 (c a b) (list 'if c b a))",
            "(unless2 nil 'yes 'no)",
        ],
        "yes",
    ),
    (["(reverse (append (list 1 2) (list 3)))"], "(3 2 1)"),
    (['(string-append "a" "b" "c")'], '"abc"'),
    (["(let* ((a 2) (b (* a a))) (list a b))"], "(2 4)"),
]


def run_sequential(forms):
    interp = Interpreter()
    ctx = NullContext()
    out = ""
    for form in forms:
        out = interp.process(form, ctx)
    return out


def run_session(device, forms):
    with CuLiSession(device) as sess:
        out = ""
        for form in forms:
            out = sess.eval(form)
        return out


@pytest.mark.parametrize("forms,expected", PROGRAMS, ids=[p[1] for p in PROGRAMS])
class TestEquivalence:
    def test_sequential(self, forms, expected):
        assert run_sequential(forms) == expected

    def test_gpu(self, forms, expected):
        assert run_session("gtx480", forms) == expected

    def test_cpu(self, forms, expected):
        assert run_session("intel", forms) == expected


def test_all_gpu_architectures_agree():
    forms = [
        "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        "(||| 5 fib (5 5 5 5 5))",
    ]
    outputs = {run_session(dev, forms) for dev in
               ("tesla-c2075", "tesla-k20", "tesla-m40", "gtx480", "gtx680", "gtx1080")}
    assert outputs == {"(5 5 5 5 5)"}
