"""The device registry and name resolution."""

import pytest

from repro.cpu.device import CPUDevice
from repro.errors import UnknownDeviceError
from repro.gpu.device import GPUDevice
from repro.runtime.devices import (
    DEVICE_NAMES,
    available_devices,
    device_for,
    resolve_spec,
)


class TestResolution:
    def test_canonical_names(self):
        for name in DEVICE_NAMES:
            assert resolve_spec(name).name == name

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("GTX 1080", "gtx1080"),
            ("gtx_480", "gtx480"),
            ("m40", "tesla-m40"),
            ("K20", "tesla-k20"),
            ("c2075", "tesla-c2075"),
            ("Tesla C2075", "tesla-c2075"),
            ("intel", "intel-e5-2620"),
            ("xeon", "intel-e5-2620"),
            ("amd", "amd-6272"),
            ("opteron", "amd-6272"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert resolve_spec(alias).name == canonical

    def test_unknown_device(self):
        with pytest.raises(UnknownDeviceError, match="available"):
            resolve_spec("voodoo2")


class TestFactory:
    def test_gpu_name_builds_gpu_device(self):
        device = device_for("gtx480")
        try:
            assert isinstance(device, GPUDevice)
        finally:
            device.close()

    def test_cpu_name_builds_cpu_device(self):
        device = device_for("intel")
        try:
            assert isinstance(device, CPUDevice)
        finally:
            device.close()

    def test_spec_object_accepted(self):
        from repro.gpu.specs import GTX480

        device = device_for(GTX480)
        try:
            assert device.name == "gtx480"
        finally:
            device.close()


class TestInventory:
    def test_nine_devices(self):
        specs = available_devices()
        assert len(specs) == 9
        assert [s.name for s in specs[:6]] == [
            "tesla-c2075", "tesla-k20", "tesla-m40", "gtx480", "gtx680", "gtx1080",
        ]
        # The Volta generation is a first-class registry member (after
        # the paper's six, before the CPU backends) without joining the
        # paper's figure sweep.
        assert specs[6].name == "tesla-v100"
        assert [s.name for s in specs[7:]] == ["intel-e5-2620", "amd-6272"]

    def test_paper_sweep_excludes_v100(self):
        from repro.gpu.specs import ALL_GPUS

        assert "tesla-v100" not in {s.name for s in ALL_GPUS}
