"""Workload generators (the paper's §IV test setup)."""

import pytest

from repro.runtime.workloads import (
    FIB_DEFUN,
    THREAD_SWEEP,
    fibonacci_workload,
    parallel_apply_workload,
    parallel_sum_workload,
)


class TestFibWorkload:
    def test_command_shape(self):
        w = fibonacci_workload(3)
        assert w.command == "(||| 3 fib (5 5 5))"
        assert w.preamble == (FIB_DEFUN,)
        assert w.jobs == 3

    def test_paper_size_envelope(self):
        """17..8207 characters per transfer (paper §IV)."""
        sizes = [fibonacci_workload(n).command_chars for n in THREAD_SWEEP]
        assert sizes[0] <= 20
        assert 8000 <= sizes[-1] <= 8400
        assert sizes == sorted(sizes)

    def test_custom_fib_argument(self):
        w = fibonacci_workload(2, fib_n=7)
        assert w.command == "(||| 2 fib (7 7))"

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fibonacci_workload(0)


class TestOtherWorkloads:
    def test_parallel_sum(self):
        w = parallel_sum_workload(3)
        assert w.command == "(||| 3 + (1 2 3) (3 2 1))"

    def test_parallel_apply(self):
        w = parallel_apply_workload(2, "(defun dbl (x) (* 2 x))", "dbl", 21)
        assert w.preamble[0].startswith("(defun dbl")
        assert w.command == "(||| 2 dbl (21 21))"

    def test_sweep_is_the_papers(self):
        assert THREAD_SWEEP == (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class TestWorkloadsExecute:
    def test_fib_runs_on_session(self):
        from repro.runtime.session import CuLiSession

        with CuLiSession("gtx480") as sess:
            w = fibonacci_workload(4)
            for form in w.preamble:
                sess.eval(form)
            assert sess.eval(w.command) == "(5 5 5 5)"

    def test_parallel_sum_runs(self):
        from repro.runtime.session import CuLiSession

        with CuLiSession("intel") as sess:
            w = parallel_sum_workload(5)
            # ascending + descending = n+1 everywhere
            assert sess.eval(w.command) == "(6 6 6 6 6)"
