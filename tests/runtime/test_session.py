"""CuLiSession: the host-side REPL protocol."""

import pytest

from repro.errors import UnbalancedInputError
from repro.runtime.session import CuLiSession, split_top_level_forms


@pytest.fixture
def session():
    sess = CuLiSession("gtx480")
    yield sess
    sess.close()


class TestEval:
    def test_eval_returns_output(self, session):
        assert session.eval("(+ 1 2)") == "3"

    def test_eval_timed(self, session):
        out, times = session.eval_timed("(* 6 7)")
        assert out == "42"
        assert times.total_ms > 0

    def test_history(self, session):
        session.eval("1")
        session.eval("2")
        assert len(session.history) == 2
        assert session.history[0].output == "1"

    def test_environment_persists(self, session):
        session.eval("(defun sq (x) (* x x))")
        assert session.eval("(sq 12)") == "144"

    def test_context_manager_closes(self):
        with CuLiSession("gtx480") as sess:
            sess.eval("1")
        assert sess.closed


class TestFeedLine:
    def test_complete_line_executes(self, session):
        stats = session.feed_line("(+ 1 2)")
        assert stats is not None and stats.output == "3"

    def test_incomplete_accumulates(self, session):
        assert session.feed_line("(let ((a 2)") is None
        assert session.pending_input != ""
        stats = session.feed_line("      (b 3)) (+ a b))")
        assert stats is not None and stats.output == "5"
        assert session.pending_input == ""

    def test_blank_line_without_pending_ignored(self, session):
        assert session.feed_line("   ") is None
        assert session.pending_input == ""

    def test_atom_line(self, session):
        stats = session.feed_line("42")
        assert stats is not None and stats.output == "42"


class TestRunProgram:
    def test_multiple_forms(self, session):
        stats = session.run_program(
            "(defun inc (x) (+ x 1))\n(inc 1)\n(inc (inc 1))"
        )
        assert [s.output for s in stats] == ["inc", "2", "3"]

    def test_comments_stripped(self, session):
        stats = session.run_program(
            "; define it\n(setq x 2) ; the value\n(* x x) ; square"
        )
        assert stats[-1].output == "4"

    def test_unbalanced_program_raises_on_upload(self, session):
        with pytest.raises(UnbalancedInputError):
            session.run_program("(defun broken (x)")


class TestSplitTopLevelForms:
    def test_split_basic(self):
        forms = split_top_level_forms("(a 1) (b (c 2))")
        assert forms == ["(a 1)", "(b (c 2))"]

    def test_parens_inside_strings_ignored(self):
        forms = split_top_level_forms('(princ "(not a list)") (+ 1 2)')
        assert len(forms) == 2

    def test_comments_removed(self):
        forms = split_top_level_forms("(a) ; trailing (junk\n(b)")
        assert forms == ["(a)", "(b)"]

    def test_trailing_atom(self):
        assert split_top_level_forms("(a) 42")[-1] == "42"


class TestDeviceKinds:
    @pytest.mark.parametrize("device", ["gtx480", "intel"])
    def test_same_protocol_both_kinds(self, device):
        with CuLiSession(device) as sess:
            sess.eval("(setq v 21)")
            assert sess.eval("(* v 2)") == "42"
            assert sess.base_latency_ms > 0
