"""HeapSnapshot: serialization format, relocation rules, failure modes."""

from __future__ import annotations

import json

import pytest

from repro.context import NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.nodes import REGION_TENURED, NodeType
from repro.errors import ArenaExhaustedError, SnapshotError
from repro.runtime.snapshot import (
    NO_REF,
    HeapSnapshot,
    SnapshotNode,
    restore_env,
    snapshot_env,
)


@pytest.fixture
def fast_interp():
    return Interpreter(options=InterpreterOptions.fast())


def session_with(interp, commands, label="tenant"):
    env = interp.create_session_env(label)
    ctx = NullContext(max_depth=4096)
    for command in commands:
        interp.process(command, ctx, env=env)
    return env


class TestRoundTrip:
    def test_values_forms_and_macros(self, fast_interp, ctx):
        env = session_with(
            fast_interp,
            [
                "(setq n 42)",
                '(setq s "hello")',
                "(setq f 3.5)",
                "(defun sq (x) (* x x))",
                "(defmacro twice (e) (list (quote +) e e))",
            ],
        )
        snap = snapshot_env(env, label="tenant")
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snap, dest)
        assert dest.process("n", ctx, env=restored) == "42"
        assert dest.process("s", ctx, env=restored) == '"hello"'
        assert dest.process("f", ctx, env=restored) == "3.5"
        assert dest.process("(sq 9)", ctx, env=restored) == "81"
        assert dest.process("(twice 5)", ctx, env=restored) == "10"

    def test_builtin_reference_re_resolved(self, fast_interp, ctx):
        env = session_with(fast_interp, ["(setq plus +)"])
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snapshot_env(env), dest)
        # The restored N_FUNCTION node points at the *destination's*
        # builtin object, not the source's.
        node = restored.lookup("plus", ctx)
        assert node.fn is dest.registry.get("+")

    def test_structure_sharing_preserved(self, fast_interp, ctx):
        env = session_with(
            fast_interp,
            ["(setq xs (list 1 2 3))", "(setq ys (cons 0 xs))"],
        )
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snapshot_env(env), dest)
        xs = restored.lookup("xs", ctx)
        ys = restored.lookup("ys", ctx)
        # ys = (0 . xs-chain): the tail chain is the SAME nodes, not a copy.
        assert ys.first.nxt is xs.first
        assert ys.last is xs.last
        assert dest.process("(last ys)", ctx, env=restored) == "3"
        assert dest.process("(cdr ys)", ctx, env=restored) == "(1 2 3)"

    def test_shadowing_order_preserved(self, fast_interp, ctx):
        # Literal interpreter so the scope stays an entry walk: the
        # newest define must still shadow after restore.
        interp = Interpreter()
        env = session_with(interp, ["(defun g (x) 1)", "(defun g (x) 2)"])
        dest = Interpreter()
        restored = restore_env(snapshot_env(env), dest)
        assert dest.process("(g 0)", ctx, env=restored) == "2"
        assert [e.symbol for e in restored.entries()] == [
            e.symbol for e in env.entries()
        ]

    def test_json_wire_round_trip(self, fast_interp, ctx):
        env = session_with(fast_interp, ["(defun inc (x) (+ x 1))"])
        snap = snapshot_env(env, label="t")
        wire = json.dumps(snap.to_dict())
        back = HeapSnapshot.from_dict(json.loads(wire))
        assert back.to_dict() == snap.to_dict()
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(back, dest)
        assert dest.process("(inc 41)", ctx, env=restored) == "42"

    def test_empty_session_round_trips(self, fast_interp, ctx):
        env = fast_interp.create_session_env("empty")
        snap = snapshot_env(env, label="empty")
        assert snap.node_count == 0 and snap.bindings == []
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snap, dest)
        assert len(restored) == 0
        assert dest.process("(+ 1 1)", ctx, env=restored) == "2"


class TestRelocationRules:
    def test_sym_ids_not_serialized(self, fast_interp):
        env = session_with(fast_interp, ["(setq marker 1)"])
        snap = snapshot_env(env)
        rows = [SnapshotNode.from_row(r.to_row()) for r in snap.nodes]
        assert all(not hasattr(r, "sym_id") for r in rows)
        # but the interned bit survives, so restore re-interns:
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snap, dest)
        entry = next(iter(restored.entries()))
        assert entry.sym_id == dest.symtab.id_of("marker")

    def test_literal_destination_stays_uninterned(self, fast_interp, ctx):
        env = session_with(fast_interp, ["(setq v 7)"])
        dest = Interpreter()  # literal: no symbol table
        restored = restore_env(snapshot_env(env), dest)
        assert next(iter(restored.entries())).sym_id == -1
        assert dest.process("v", ctx, env=restored) == "7"

    def test_restored_nodes_are_tenured(self, fast_interp, ctx):
        env = session_with(fast_interp, ["(defun keep (x) (list x x))"])
        dest = Interpreter(options=InterpreterOptions.fast())
        before = dest.arena.used
        snap = snapshot_env(env)
        restore_env(snap, dest)
        assert dest.arena.used == before + snap.node_count
        assert dest.arena.tenured_count == dest.arena.used

    def test_truncated_last_restores_as_nil(self, fast_interp, ctx):
        # Hand-build a view whose ``last`` escapes the mark edges: the
        # snapshot must drop the pointer (as the source GC would have),
        # not emit a dangling reference.
        env = fast_interp.create_session_env("t")
        arena = fast_interp.arena
        stray = arena.new_int(99, ctx)
        view = arena.alloc(NodeType.N_LIST, ctx)
        view.first = arena.new_int(1, ctx)
        view.last = stray  # not on the first/nxt chain
        view.seal()
        env.define("view", view, ctx)
        snap = snapshot_env(env)
        rec = snap.nodes[snap.bindings[0][1]]
        assert rec.last == NO_REF
        dest = Interpreter(options=InterpreterOptions.fast())
        restored = restore_env(snap, dest)
        assert restored.lookup("view", ctx).last is None


class TestFailureModes:
    def test_version_mismatch_rejected(self):
        with pytest.raises(SnapshotError):
            HeapSnapshot.from_dict({"version": 999, "label": "x"})

    def test_dangling_node_reference_rejected(self):
        data = {
            "version": 1,
            "label": "x",
            "nodes": [[int(NodeType.N_INT), 1, 0.0, "", None, -1, -1, 5, -1, 1]],
            "bindings": [["a", 0, False]],
        }
        with pytest.raises(SnapshotError):
            HeapSnapshot.from_dict(data)

    def test_dangling_binding_reference_rejected(self):
        data = {"version": 1, "label": "x", "nodes": [], "bindings": [["a", 0, False]]}
        with pytest.raises(SnapshotError):
            HeapSnapshot.from_dict(data)

    def test_unknown_builtin_rejected(self, fast_interp):
        env = session_with(fast_interp, ["(setq plus +)"])
        snap = snapshot_env(env)
        for rec in snap.nodes:
            if rec.fn_name is not None:
                rec.fn_name = "no-such-builtin"
        dest = Interpreter(options=InterpreterOptions.fast())
        with pytest.raises(SnapshotError):
            restore_env(snap, dest)

    def test_exhausted_destination_raises_without_root_leak(self, fast_interp):
        env = session_with(
            fast_interp, ["(setq big (list " + "1 " * 64 + "))"]
        )
        snap = snapshot_env(env)
        baseline = Interpreter(options=InterpreterOptions.fast()).arena.used
        # Room for the builtins and half the snapshot: restore runs out
        # of arena partway through materialization.
        dest = Interpreter(
            options=InterpreterOptions.fast(
                arena_capacity=baseline + snap.node_count // 2
            )
        )
        roots_before = len(dest.extra_roots)
        with pytest.raises(ArenaExhaustedError):
            restore_env(snap, dest)
        # No half-installed session root; the orphaned nodes are
        # unreachable and the next major collection reclaims them.
        assert len(dest.extra_roots) == roots_before
        used = dest.arena.used
        dest.collect_major()
        assert dest.arena.used < used
