"""Task signatures and grouping for warp-representative simulation."""

from repro.context import NullContext
from repro.core.interpreter import Interpreter
from repro.core.reader import Parser
from repro.runtime.fidelity import Fidelity, group_rows, task_signature


def nodes_of(interp, source):
    return Parser(interp, NullContext()).parse(source)


class TestSignatures:
    def test_equal_values_equal_signatures(self, interp):
        a, b = nodes_of(interp, "5 5")
        fn = interp.global_env.lookup("+", NullContext())
        assert task_signature(fn, [a]) == task_signature(fn, [b])

    def test_different_values_differ(self, interp):
        a, b = nodes_of(interp, "5 6")
        fn = interp.global_env.lookup("+", NullContext())
        assert task_signature(fn, [a]) != task_signature(fn, [b])

    def test_type_matters(self, interp):
        a, b = nodes_of(interp, "5 5.0")
        fn = interp.global_env.lookup("+", NullContext())
        assert task_signature(fn, [a]) != task_signature(fn, [b])

    def test_structural_lists(self, interp):
        a, b, c = nodes_of(interp, "(1 (2)) (1 (2)) (1 (3))")
        fn = interp.global_env.lookup("car", NullContext())
        assert task_signature(fn, [a]) == task_signature(fn, [b])
        assert task_signature(fn, [a]) != task_signature(fn, [c])

    def test_function_identity_matters(self, interp):
        ctx = NullContext()
        (arg,) = nodes_of(interp, "5")
        plus = interp.global_env.lookup("+", ctx)
        minus = interp.global_env.lookup("-", ctx)
        assert task_signature(plus, [arg]) != task_signature(minus, [arg])

    def test_symbols_and_strings_distinct(self, interp):
        a, b = nodes_of(interp, 'abc "abc"')
        fn = interp.global_env.lookup("list", NullContext())
        assert task_signature(fn, [a]) != task_signature(fn, [b])


class TestGrouping:
    def test_uniform_rows_one_group(self, interp):
        rows = [nodes_of(interp, "5") for _ in range(10)]
        fn = interp.global_env.lookup("+", NullContext())
        groups = group_rows(fn, rows)
        assert len(groups) == 1
        (indices,) = groups.values()
        assert indices == list(range(10))

    def test_mixed_rows_grouped_by_value(self, interp):
        values = [5, 7, 5, 7, 5]
        rows = [nodes_of(interp, str(v)) for v in values]
        fn = interp.global_env.lookup("+", NullContext())
        groups = group_rows(fn, rows)
        assert len(groups) == 2
        sizes = sorted(len(ix) for ix in groups.values())
        assert sizes == [2, 3]

    def test_insertion_order_preserved(self, interp):
        rows = [nodes_of(interp, str(v)) for v in (9, 3, 9)]
        fn = interp.global_env.lookup("+", NullContext())
        groups = list(group_rows(fn, rows).values())
        assert groups[0] == [0, 2]
        assert groups[1] == [1]


def test_fidelity_enum_values():
    assert Fidelity("full") is Fidelity.FULL
    assert Fidelity("warp") is Fidelity.WARP
