"""PhaseBreakdown arithmetic (repro.timing)."""

import pytest

from repro.timing import CommandStats, PhaseBreakdown


def test_kernel_is_parse_eval_print():
    t = PhaseBreakdown(parse_ms=1.0, eval_ms=2.0, print_ms=3.0, other_ms=10.0)
    assert t.kernel_ms == 6.0


def test_total_includes_overheads():
    t = PhaseBreakdown(
        parse_ms=1.0, eval_ms=2.0, print_ms=3.0,
        other_ms=0.5, transfer_ms=0.25, host_ms=0.25,
    )
    assert t.total_ms == 7.0


def test_proportions_sum_to_one():
    t = PhaseBreakdown(parse_ms=1.0, eval_ms=1.0, print_ms=2.0)
    pr = t.proportions()
    assert pr["parse"] == pytest.approx(0.25)
    assert pr["print"] == pytest.approx(0.5)
    assert sum(pr.values()) == pytest.approx(1.0)


def test_proportions_of_zero_kernel():
    pr = PhaseBreakdown().proportions()
    assert pr == {"parse": 0.0, "eval": 0.0, "print": 0.0}


def test_merged_with_adds_fields():
    a = PhaseBreakdown(parse_ms=1.0, eval_ms=2.0, spin_cycles=10, cache_misses=3)
    b = PhaseBreakdown(parse_ms=0.5, print_ms=4.0, spin_cycles=5, cache_misses=1)
    m = a.merged_with(b)
    assert m.parse_ms == 1.5
    assert m.eval_ms == 2.0
    assert m.print_ms == 4.0
    assert m.spin_cycles == 15
    assert m.cache_misses == 4


def test_command_stats_defaults():
    stats = CommandStats()
    assert stats.output == ""
    assert stats.jobs == 0
    assert stats.times.total_ms == 0.0
