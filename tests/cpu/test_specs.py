"""CPU specifications (the paper's two baseline systems)."""

import pytest

from repro.cpu.specs import ALL_CPUS, AMD_6272, CPU_BY_NAME, INTEL_E5_2620


class TestCatalog:
    def test_two_cpus(self):
        assert len(ALL_CPUS) == 2
        assert set(CPU_BY_NAME) == {"intel-e5-2620", "amd-6272"}

    def test_intel_is_6c12t(self):
        # "Intel Xeon E5-2620 CPU (6 core + hyperthreads, 2.00 GHz)"
        assert INTEL_E5_2620.cores == 6
        assert INTEL_E5_2620.hw_threads == 12
        assert INTEL_E5_2620.clock_ghz == 2.00

    def test_amd_is_4x16(self):
        # "four AMD 6272 CPUs (64 cores, 1.8 GHz and 128 GiB DDR3 RAM)"
        assert AMD_6272.sockets == 4
        assert AMD_6272.cores == 64
        assert AMD_6272.hw_threads == 64
        assert AMD_6272.clock_ghz == 1.80
        assert AMD_6272.ram_gib == 128


class TestDerived:
    def test_cycles_to_ms(self):
        assert INTEL_E5_2620.cycles_to_ms(2.0e6) == pytest.approx(1.0)

    def test_requires_cost_table(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(INTEL_E5_2620, costs=None)
