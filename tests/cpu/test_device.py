"""The CPU device (the paper's pthreads build)."""

import pytest

from repro.errors import DeviceShutdownError, UnbalancedInputError

FIB = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"


class TestLifecycle:
    def test_base_latency_tiny(self, cpu_device):
        # No CUDA context: microseconds, not hundreds of microseconds.
        assert cpu_device.base_latency_ms < 0.01

    def test_close_then_submit_raises(self, cpu_device):
        cpu_device.close()
        with pytest.raises(DeviceShutdownError):
            cpu_device.submit("1")


class TestSubmission:
    def test_basic(self, cpu_device):
        assert cpu_device.submit("(* 6 7)").output == "42"

    def test_persistent_env(self, cpu_device):
        cpu_device.submit(FIB)
        assert cpu_device.submit("(fib 10)").output == "55"

    def test_parallel_output_matches(self, cpu_device):
        cpu_device.submit(FIB)
        stats = cpu_device.submit("(||| 5 fib (5 5 5 5 5))")
        assert stats.output == "(5 5 5 5 5)"
        assert stats.jobs == 5

    def test_unbalanced_refused(self, cpu_device):
        with pytest.raises(UnbalancedInputError):
            cpu_device.submit("(+ 1")


class TestTiming:
    def test_no_pcie_transfer(self, cpu_device):
        t = cpu_device.submit("(+ 1 2)").times
        assert t.transfer_ms == 0.0

    def test_phase_times_positive(self, cpu_device):
        t = cpu_device.submit("(* 2 (+ 4 3) 6)").times
        assert t.parse_ms > 0 and t.eval_ms > 0 and t.print_ms > 0

    def test_cpu_spin_energy_is_zero(self, cpu_device):
        """CPU workers sleep on condvars; no busy-wait energy burn."""
        cpu_device.submit(FIB)
        t = cpu_device.submit("(||| 4 fib (5 5 5 5))").times
        assert t.spin_cycles == 0.0


class TestWaves:
    def test_jobs_beyond_hw_threads_take_waves(self, cpu_device):
        # Intel: 12 hardware threads; 30 jobs -> 3 waves.
        cpu_device.submit(FIB)
        stats = cpu_device.submit("(||| 30 fib (" + " ".join(["5"] * 30) + "))")
        assert stats.rounds == 3

    def test_wave_count_on_amd(self, amd_device):
        amd_device.submit(FIB)
        stats = amd_device.submit("(||| 64 fib (" + " ".join(["5"] * 64) + "))")
        assert stats.rounds == 1

    def test_more_waves_more_worker_time(self, cpu_device):
        cpu_device.submit(FIB)
        t12 = cpu_device.submit("(||| 12 fib (" + " ".join(["5"] * 12) + "))").times
        t48 = cpu_device.submit("(||| 48 fib (" + " ".join(["5"] * 48) + "))").times
        assert t48.worker_ms == pytest.approx(4 * t12.worker_ms, rel=0.05)
