"""The pthread-pool ||| engine."""

import pytest

from repro.cpu.device import CPUDevice, CPUDeviceConfig
from repro.cpu.specs import INTEL_E5_2620
from repro.runtime.fidelity import Fidelity

FIB = "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"


@pytest.fixture
def full_cpu():
    device = CPUDevice(INTEL_E5_2620, config=CPUDeviceConfig(fidelity=Fidelity.FULL))
    yield device
    device.close()


class TestEngineAccounting:
    def test_distribute_and_collect_cycles(self, cpu_device):
        cpu_device.submit(FIB)
        cpu_device.submit("(||| 6 fib (5 5 5 5 5 5))")
        engine = cpu_device.engine
        assert engine.distribute_cycles > 0
        assert engine.collect_cycles > 0
        assert engine.worker_wall_cycles > 0
        assert engine.jobs == 6

    def test_begin_command_resets(self, cpu_device):
        cpu_device.submit(FIB)
        cpu_device.submit("(||| 4 fib (5 5 5 5))")
        cpu_device.submit("(+ 1 2)")  # no ||| here
        assert cpu_device.engine.jobs == 0
        assert cpu_device.engine.worker_wall_cycles == 0


class TestFidelity:
    def test_full_and_warp_agree(self, cpu_device, full_cpu):
        for device in (cpu_device, full_cpu):
            device.submit(FIB)
        cmd = "(||| 24 fib (" + " ".join(["5"] * 24) + "))"
        a = cpu_device.submit(cmd)
        b = full_cpu.submit(cmd)
        assert a.output == b.output
        assert a.times.worker_ms == pytest.approx(b.times.worker_ms, rel=0.02)

    def test_no_warp_rounding_on_cpu(self, cpu_device):
        """CPUs have no warps: 13 jobs on 12 threads = 2 waves, and the
        second wave holds exactly one job."""
        cpu_device.submit(FIB)
        stats = cpu_device.submit("(||| 13 fib (" + " ".join(["5"] * 13) + "))")
        assert stats.rounds == 2


class TestNested:
    def test_nested_parallel_falls_back(self, cpu_device):
        cpu_device.submit("(defun inner (x) (car (||| 1 + (5) (6))))")
        stats = cpu_device.submit("(||| 2 inner (0 0))")
        assert stats.output == "(11 11)"
        assert cpu_device.engine.nested_fallbacks >= 1
