"""The char-by-char parser (paper §III-B-b)."""

import pytest

from repro.context import CountingContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.nodes import NodeType
from repro.core.reader import Parser
from repro.errors import ParseError
from repro.ops import Op


@pytest.fixture
def parse(interp, ctx):
    def _parse(text):
        return Parser(interp, ctx).parse(text)

    return _parse


class TestAtoms:
    def test_integer(self, parse):
        (node,) = parse("42")
        assert node.ntype == NodeType.N_INT and node.ival == 42

    def test_negative_integer(self, parse):
        (node,) = parse("-17")
        assert node.ntype == NodeType.N_INT and node.ival == -17

    def test_float_with_dot(self, parse):
        (node,) = parse("2.5")
        assert node.ntype == NodeType.N_FLOAT and node.fval == 2.5

    def test_float_exponent_without_dot(self, parse):
        # strtod semantics: 2E3 is a float even without a dot.
        (node,) = parse("2E3")
        assert node.ntype == NodeType.N_FLOAT and node.fval == 2000.0

    def test_plus_alone_is_symbol(self, parse):
        # The paper's first-char rule would call '+' numeric; the number
        # parse fails and the token falls back to a symbol.
        (node,) = parse("+")
        assert node.ntype == NodeType.N_SYMBOL and node.sval == "+"

    def test_nil_and_t(self, parse):
        nil, t = parse("nil T")
        assert nil.ntype == NodeType.N_NIL
        assert t.ntype == NodeType.N_TRUE

    def test_string(self, parse):
        (node,) = parse('"hello world"')
        assert node.ntype == NodeType.N_STRING and node.sval == "hello world"

    def test_string_keeps_parens_and_spaces(self, parse):
        (node,) = parse('"a (b) c"')
        assert node.sval == "a (b) c"

    def test_symbol(self, parse):
        (node,) = parse("foo-bar!")
        assert node.ntype == NodeType.N_SYMBOL and node.sval == "foo-bar!"

    def test_dotted_number_like_symbol(self, parse):
        (node,) = parse("1.2.3")
        assert node.ntype == NodeType.N_SYMBOL  # trailing junk => not a number


class TestLists:
    def test_flat_list(self, parse):
        (lst,) = parse("(+ 1 2)")
        kinds = [c.ntype for c in lst.children()]
        assert kinds == [NodeType.N_SYMBOL, NodeType.N_INT, NodeType.N_INT]

    def test_nested_lists(self, parse):
        (lst,) = parse("(* 2 (+ 4 3) 6)")  # the paper's §III-A example
        children = list(lst.children())
        assert children[0].sval == "*"
        assert children[2].ntype == NodeType.N_LIST
        inner = list(children[2].children())
        assert inner[0].sval == "+" and inner[1].ival == 4

    def test_empty_list(self, parse):
        (lst,) = parse("()")
        assert lst.ntype == NodeType.N_LIST and lst.first is None

    def test_multiple_top_level_forms(self, parse):
        forms = parse("(+ 1 2) 7 (list)")
        assert len(forms) == 3

    def test_whitespace_variants(self, parse):
        (lst,) = parse("  (\t1   2\n3 )  ")
        assert [c.ival for c in lst.children()] == [1, 2, 3]

    def test_parse_tree_nodes_are_sealed(self, parse):
        (lst,) = parse("(1 (2) 3)")
        stack = [lst]
        while stack:
            node = stack.pop()
            assert node.sealed
            stack.extend(node.children())


class TestComments:
    def test_line_comment_skipped(self, parse):
        forms = parse("; a comment\n(+ 1 2) ; trailing\n7")
        assert len(forms) == 2
        assert forms[1].ival == 7

    def test_comment_inside_list(self, parse):
        (lst,) = parse("(1 ; ignored 9 9\n 2)")
        assert [c.ival for c in lst.children()] == [1, 2]

    def test_semicolon_in_string_is_literal(self, parse):
        (node,) = parse('"a;b"')
        assert node.sval == "a;b"


class TestQuoteSugar:
    def test_quote_expands(self, parse):
        (lst,) = parse("'x")
        children = list(lst.children())
        assert children[0].sval == "quote"
        assert children[1].sval == "x"

    def test_quote_sugar_can_be_disabled(self, ctx):
        interp = Interpreter(options=InterpreterOptions(quote_sugar=False))
        (node,) = Parser(interp, ctx).parse("'x")
        assert node.ntype == NodeType.N_SYMBOL and node.sval == "'x"


class TestErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("(1 2", "missing"),
            (")", "unexpected"),
            ('"abc', "unterminated"),
            ("", "empty input"),
            ("   ", "empty input"),
        ],
    )
    def test_bad_input(self, parse, text, match):
        with pytest.raises(ParseError, match=match):
            parse(text)

    def test_deep_nesting_rejected(self, parse):
        with pytest.raises(ParseError, match="nesting"):
            parse("(" * 600 + ")" * 600)


class TestCharging:
    def test_each_char_loaded_about_once(self, interp):
        cctx = CountingContext()
        text = "(+ 1 2 (* 3 4))"
        Parser(interp, cctx).parse(text)
        loads = cctx.counts.count_of(Op.CHAR_LOAD)
        # single-pass cursor: n chars + 1 terminator
        assert loads == len(text) + 1

    def test_longer_input_costs_more(self, interp):
        short, long = CountingContext(), CountingContext()
        Parser(interp, short).parse("(+ 1 2)")
        Parser(interp, long).parse("(+ " + " ".join(["1"] * 100) + ")")
        assert long.counts.phase_count(long.phase) > short.counts.phase_count(short.phase)
