"""SymbolTable interning semantics and charging."""

from repro.context import CountingContext, NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.symtab import SymbolTable
from repro.ops import Op


class TestSymbolTable:
    def test_intern_is_stable(self):
        tab = SymbolTable()
        ctx = NullContext()
        a = tab.intern("alpha", ctx)
        b = tab.intern("beta", ctx)
        assert a != b
        assert tab.intern("alpha", ctx) == a
        assert len(tab) == 2

    def test_roundtrip(self):
        tab = SymbolTable()
        ctx = NullContext()
        sym_id = tab.intern("gamma-value", ctx)
        assert tab.spelling_of(sym_id) == "gamma-value"
        assert tab.id_of("gamma-value") == sym_id
        assert tab.id_of("unknown") is None
        assert "gamma-value" in tab
        assert "unknown" not in tab

    def test_intern_charges_one_probe(self):
        tab = SymbolTable()
        ctx = CountingContext()
        tab.intern("alpha", ctx)   # miss: probe + table write
        tab.intern("alpha", ctx)   # hit: probe only
        assert ctx.counts.count_of(Op.HASH_PROBE) == 2
        assert ctx.counts.count_of(Op.NODE_WRITE) == 1


class TestInterpreterInterning:
    def test_literal_mode_has_no_table(self):
        interp = Interpreter(options=InterpreterOptions())
        assert interp.symtab is None
        assert interp.arena.symtab is None

    def test_parser_interns_symbols(self):
        interp = Interpreter(options=InterpreterOptions(intern_symbols=True))
        ctx = NullContext()
        (form,) = interp.parse_source("(alpha beta alpha)", ctx)
        kids = list(form.children())
        assert kids[0].sym_id >= 0
        assert kids[0].sym_id == kids[2].sym_id
        assert kids[0].sym_id != kids[1].sym_id

    def test_builtins_are_interned(self):
        interp = Interpreter(options=InterpreterOptions(intern_symbols=True))
        assert interp.symtab is not None
        assert "defun" in interp.symtab
        assert "+" in interp.symtab
        plus = interp.global_env.lookup("+", NullContext())
        assert plus is not None and plus.sym_id == interp.symtab.id_of("+")

    def test_literal_nodes_stay_uninterned(self):
        interp = Interpreter(options=InterpreterOptions())
        ctx = NullContext()
        (form,) = interp.parse_source("(alpha beta)", ctx)
        assert all(kid.sym_id == -1 for kid in form.children())

    def test_copy_node_preserves_sym_id(self):
        interp = Interpreter(options=InterpreterOptions(intern_symbols=True))
        ctx = NullContext()
        sym = interp.arena.new_symbol("alpha", ctx)
        clone = interp.copy_node(sym, ctx)
        assert clone.sym_id == sym.sym_id >= 0
