"""Between-command node reclamation (paper: nodes "marked as free")."""

import pytest

from repro.context import NullContext
from repro.core.gc import collect_garbage, mark_reachable
from repro.core.interpreter import Interpreter
from repro.core.reader import Parser


@pytest.fixture
def fresh():
    return Interpreter()


def run(interp, src):
    return interp.process(src, NullContext())


class TestCollection:
    def test_temporaries_are_reclaimed(self, fresh):
        baseline = fresh.arena.used
        run(fresh, "(+ 1 2 (* 3 4))")
        assert fresh.arena.used > baseline
        freed = collect_garbage(fresh)
        assert freed > 0
        assert fresh.arena.used == baseline

    def test_defun_survives_collection(self, fresh):
        run(fresh, "(defun sq (x) (* x x))")
        collect_garbage(fresh)
        assert run(fresh, "(sq 9)") == "81"

    def test_setq_value_survives_collection(self, fresh):
        run(fresh, "(setq stash (list 1 2 3))")
        collect_garbage(fresh)
        assert run(fresh, "stash") == "(1 2 3)"

    def test_singletons_never_freed(self, fresh):
        collect_garbage(fresh)
        assert run(fresh, "nil") == "nil"
        assert run(fresh, "(if nil 1 2)") == "2"

    def test_usage_bounded_over_many_commands(self, fresh):
        run(fresh, "(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        collect_garbage(fresh)
        settled = fresh.arena.used
        for _ in range(20):
            run(fresh, "(fib 8)")
            collect_garbage(fresh)
        assert fresh.arena.used == settled

    def test_collection_is_idempotent(self, fresh):
        run(fresh, "(list 1 2 3)")
        collect_garbage(fresh)
        assert collect_garbage(fresh) == 0


class TestMarkReachable:
    def test_marks_child_chain(self, fresh):
        ctx = NullContext()
        (lst,) = Parser(fresh, ctx).parse("(1 (2 3) 4)")
        marked = mark_reachable([lst])
        # outer list, its 3 elements (1, inner, 4), inner's 2 elements
        assert len(marked) == 6

    def test_marks_form_params_and_body(self, fresh):
        run(fresh, "(defun f (a b) (+ a b))")
        form = fresh.global_env.lookup("f", NullContext())
        marked = mark_reachable([form])
        assert form.params in marked
        assert form.first in marked
