"""The Interpreter facade: process(), node utilities, output plumbing."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.nodes import NodeType
from repro.ops import Op, Phase


class TestProcess:
    def test_multiple_top_level_forms_print_all(self, run):
        assert run("(+ 1 1) (+ 2 2) (+ 3 3)") == "2 4 6"

    def test_phase_attribution(self, interp):
        ctx = CountingContext()
        interp.process("(+ 1 2)", ctx)
        assert ctx.counts.count_of(Op.CHAR_LOAD, Phase.PARSE) > 0
        assert ctx.counts.count_of(Op.CALL, Phase.EVAL) > 0
        assert ctx.counts.count_of(Op.CHAR_STORE, Phase.PRINT) > 0
        # No parse charges during eval or print:
        assert ctx.counts.count_of(Op.CHAR_LOAD, Phase.EVAL) == 0

    def test_custom_environment(self, interp, ctx):
        env = interp.global_env.child()
        env.define("x", interp.arena.new_int(9, ctx), ctx)
        assert interp.process("x", ctx, env=env) == "9"
        # An empty child env must still be honoured (not swapped for
        # the global env by a falsy-container bug).
        empty = interp.global_env.child()
        assert interp.process("(+ 1 1)", ctx, env=empty) == "2"


class TestNodeUtilities:
    def test_copy_node_shares_children(self, interp, ctx):
        from repro.core.reader import Parser

        (lst,) = Parser(interp, ctx).parse("(1 2 3)")
        clone = interp.copy_node(lst, ctx)
        assert clone is not lst
        assert clone.first is lst.first  # structure shared
        assert not clone.linked

    def test_linkable_copies_only_linked(self, interp, ctx):
        fresh = interp.arena.new_int(5, ctx)
        assert interp.linkable(fresh, ctx) is fresh
        fresh.linked = True
        assert interp.linkable(fresh, ctx) is not fresh

    def test_truthy_rules(self, interp, ctx):
        assert not interp.truthy(interp.nil, ctx)
        assert interp.truthy(interp.true, ctx)
        assert interp.truthy(interp.arena.new_int(0, ctx), ctx)
        empty = interp.arena.alloc(NodeType.N_LIST, ctx).seal()
        assert not interp.truthy(empty, ctx)


class TestOutputPlumbing:
    def test_scratch_output_when_none_pushed(self, interp):
        ctx = NullContext()
        out = interp.current_output(ctx)
        out.append("x")
        assert interp.current_output(ctx) is out

    def test_push_pop(self, interp, ctx):
        from repro.gpu.memory import OutputBuffer

        buf = OutputBuffer()
        buf.bind(ctx)
        interp.push_output(buf)
        assert interp.current_output(ctx) is buf
        assert interp.pop_output() is buf


class TestOptions:
    def test_arena_capacity_respected(self):
        interp = Interpreter(options=InterpreterOptions(arena_capacity=2048))
        assert interp.arena.capacity == 2048

    def test_setup_charges_go_to_given_context(self):
        ctx = CountingContext()
        ctx.set_phase(Phase.OTHER)
        Interpreter(setup_ctx=ctx)
        # ~100 builtins: one function node + one env entry each.
        assert ctx.counts.count_of(Op.NODE_ALLOC, Phase.OTHER) > 150

    def test_registry_size(self, interp):
        assert len(interp.registry) >= 95
