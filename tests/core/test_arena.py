"""The fixed-size node arena (paper §III-A-c)."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.arena import NodeArena
from repro.core.nodes import NodeType
from repro.errors import ArenaExhaustedError
from repro.ops import Op


@pytest.fixture
def ctx():
    return NullContext()


class TestCapacity:
    def test_exhaustion_raises(self, ctx):
        arena = NodeArena(capacity=3)
        for _ in range(3):
            arena.alloc(NodeType.N_INT, ctx)
        with pytest.raises(ArenaExhaustedError, match="exhausted"):
            arena.alloc(NodeType.N_INT, ctx)

    def test_free_makes_room(self, ctx):
        arena = NodeArena(capacity=1)
        node = arena.alloc(NodeType.N_INT, ctx)
        arena.free(node)
        arena.alloc(NodeType.N_SYMBOL, ctx)  # must not raise

    def test_free_count(self, ctx):
        arena = NodeArena(capacity=10)
        arena.alloc(NodeType.N_INT, ctx)
        assert arena.used == 1
        assert arena.free_count == 9

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            NodeArena(capacity=0)

    def test_double_free_detected(self, ctx):
        arena = NodeArena(capacity=2)
        node = arena.alloc(NodeType.N_INT, ctx)
        arena.free(node)
        with pytest.raises(ArenaExhaustedError, match="double free"):
            arena.free(node)


class TestRecycling:
    def test_reused_node_is_reset(self, ctx):
        arena = NodeArena(capacity=1)
        node = arena.alloc(NodeType.N_LIST, ctx)
        node.set_str("junk")
        node.first = node  # deliberately leave garbage wiring behind
        node.linked = True
        node.seal()
        node.first = None  # break the self-cycle before freeing
        arena.free(node)
        again = arena.alloc(NodeType.N_INT, ctx)
        assert again is node
        assert again.ntype == NodeType.N_INT
        assert again.sval == ""
        assert again.first is None
        assert not again.sealed
        assert not again.linked

    def test_freed_node_leaks_no_prior_request_state(self, ctx):
        """Regression: a node returned to the free list must not carry
        its previous life's symbol id, parameter list, or subgraph
        pointers — neither while parked on the free list (where stale
        pointers would pin dead subgraphs) nor when recycled."""
        arena = NodeArena(capacity=4)
        params = arena.alloc(NodeType.N_LIST, ctx).seal()
        form = arena.alloc(NodeType.N_FORM, ctx)
        form.set_str("secret-fn").set_params(params)
        form.sym_id = 42
        form.first = arena.alloc(NodeType.N_INT, ctx).seal()
        form.seal()
        arena.free(form)
        # Parked on the free list: every value/link field is cleared.
        assert form.sym_id == -1
        assert form.params is None
        assert form.first is None
        assert form.sval == ""
        assert not form.sealed
        recycled = arena.alloc(NodeType.N_SYMBOL, ctx)
        assert recycled is form
        assert recycled.sym_id == -1
        assert recycled.params is None

    def test_stats_track_allocs_frees_peak(self, ctx):
        arena = NodeArena(capacity=8)
        nodes = [arena.alloc(NodeType.N_INT, ctx) for _ in range(5)]
        for node in nodes[:2]:
            arena.free(node)
        assert arena.stats.allocs == 5
        assert arena.stats.frees == 2
        assert arena.stats.peak_used == 5
        assert arena.used == 3

    def test_free_tree_counts_subtree(self, ctx):
        arena = NodeArena(capacity=16)
        lst = arena.alloc(NodeType.N_LIST, ctx)
        inner = arena.alloc(NodeType.N_LIST, ctx)
        inner.append_child(arena.alloc(NodeType.N_INT, ctx).seal())
        lst.append_child(inner.seal())
        lst.append_child(arena.alloc(NodeType.N_INT, ctx).seal())
        assert arena.free_tree(lst.seal()) == 4
        assert arena.used == 0


class TestConstructors:
    def test_new_number_dispatches_on_type(self, ctx):
        arena = NodeArena(capacity=8)
        assert arena.new_number(3, ctx).ntype == NodeType.N_INT
        assert arena.new_number(3.0, ctx).ntype == NodeType.N_FLOAT

    def test_new_number_rejects_bool(self, ctx):
        arena = NodeArena(capacity=8)
        with pytest.raises(TypeError):
            arena.new_number(True, ctx)

    def test_new_bool(self, ctx):
        arena = NodeArena(capacity=8)
        assert arena.new_bool(True, ctx).ntype == NodeType.N_TRUE
        assert arena.new_bool(False, ctx).ntype == NodeType.N_NIL

    def test_constructors_seal(self, ctx):
        arena = NodeArena(capacity=8)
        for node in (
            arena.new_int(1, ctx),
            arena.new_float(1.5, ctx),
            arena.new_string("s", ctx),
            arena.new_symbol("x", ctx),
            arena.new_nil(ctx),
            arena.new_true(ctx),
        ):
            assert node.sealed


class TestCharging:
    def test_alloc_charges_node_alloc(self):
        cctx = CountingContext()
        arena = NodeArena(capacity=8)
        arena.alloc(NodeType.N_INT, cctx)
        assert cctx.counts.count_of(Op.NODE_ALLOC) == 1

    def test_atomic_cursor_mode_charges_contended_rmw(self):
        cctx = CountingContext()
        arena = NodeArena(capacity=8, atomic_cursor=True)
        arena.contention_width = 31
        arena.alloc(NodeType.N_INT, cctx)
        # (width + 1) / 2 = 16 serialized slots
        assert cctx.counts.count_of(Op.ATOMIC_RMW) == 16

    def test_default_mode_charges_no_atomics(self):
        cctx = CountingContext()
        arena = NodeArena(capacity=8)
        arena.alloc(NodeType.N_INT, cctx)
        assert cctx.counts.count_of(Op.ATOMIC_RMW) == 0

    def test_allocated_nodes_snapshot(self):
        ctx = NullContext()
        arena = NodeArena(capacity=8)
        a = arena.alloc(NodeType.N_INT, ctx)
        b = arena.alloc(NodeType.N_INT, ctx)
        snap = arena.allocated_nodes()
        assert snap == {a, b}
        arena.free(a)
        assert arena.allocated_nodes() == {b}
