"""Node structure and immutability (paper §III-A)."""

import pytest

from repro.core.nodes import NODE_BYTES, Node, NodeType
from repro.errors import ImmutabilityError


def make(ntype=NodeType.N_INT, idx=0):
    return Node(idx, ntype)


class TestSealing:
    def test_sealed_node_rejects_value_writes(self):
        node = make().set_int(5).seal()
        with pytest.raises(ImmutabilityError):
            node.set_int(6)

    def test_sealed_list_rejects_new_children(self):
        lst = make(NodeType.N_LIST)
        lst.append_child(make(NodeType.N_INT, 1))
        lst.seal()
        with pytest.raises(ImmutabilityError):
            lst.append_child(make(NodeType.N_INT, 2))

    def test_all_setters_guarded(self):
        node = make(NodeType.N_FORM).seal()
        for call in (
            lambda: node.set_int(1),
            lambda: node.set_float(1.0),
            lambda: node.set_str("x"),
            lambda: node.set_params(make(NodeType.N_LIST, 9)),
        ):
            with pytest.raises(ImmutabilityError):
                call()

    def test_unsealed_node_is_mutable(self):
        node = make()
        node.set_int(1).set_int(2)
        assert node.ival == 2


class TestListStructure:
    def test_append_child_builds_chain(self):
        lst = make(NodeType.N_LIST)
        kids = [make(NodeType.N_INT, i + 1).set_int(i) for i in range(3)]
        for kid in kids:
            lst.append_child(kid)
        assert lst.first is kids[0]
        assert lst.last is kids[2]
        assert [c.ival for c in lst.children()] == [0, 1, 2]

    def test_append_marks_child_linked(self):
        lst = make(NodeType.N_LIST)
        kid = make(NodeType.N_INT, 1)
        assert not kid.linked
        lst.append_child(kid)
        assert kid.linked

    def test_child_count(self):
        lst = make(NodeType.N_LIST)
        assert lst.child_count() == 0
        lst.append_child(make(NodeType.N_INT, 1))
        lst.append_child(make(NodeType.N_INT, 2))
        assert lst.child_count() == 2


class TestClassification:
    def test_primitive_types(self):
        for t in (NodeType.N_NIL, NodeType.N_TRUE, NodeType.N_INT, NodeType.N_FLOAT,
                  NodeType.N_STRING, NodeType.N_SYMBOL, NodeType.N_FUNCTION):
            assert make(t).is_primitive
        for t in (NodeType.N_LIST, NodeType.N_EXPRESSION, NodeType.N_FORM):
            assert not make(t).is_primitive

    def test_list_like(self):
        assert make(NodeType.N_LIST).is_list_like
        assert make(NodeType.N_EXPRESSION).is_list_like
        assert not make(NodeType.N_FORM).is_list_like

    def test_callable(self):
        for t in (NodeType.N_FUNCTION, NodeType.N_FORM, NodeType.N_MACRO):
            assert make(t).is_callable
        assert not make(NodeType.N_SYMBOL).is_callable

    def test_truthiness_only_nil_false(self):
        assert not make(NodeType.N_NIL).is_truthy
        assert make(NodeType.N_INT).is_truthy
        assert make(NodeType.N_LIST).is_truthy  # raw datum, not evaluated


class TestValues:
    def test_number_property(self):
        assert make(NodeType.N_INT).set_int(42).number == 42
        assert make(NodeType.N_FLOAT).set_float(2.5).number == 2.5
        with pytest.raises(TypeError):
            make(NodeType.N_SYMBOL).number

    def test_addr_derives_from_index(self):
        assert make(idx=3).addr == 3 * NODE_BYTES

    def test_repr_mentions_type(self):
        assert "N_INT" in repr(make(NodeType.N_INT).set_int(7))
