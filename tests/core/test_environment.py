"""Environment trees (paper §III-B-a)."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.environment import Environment
from repro.core.nodes import Node, NodeType
from repro.ops import Op


@pytest.fixture
def ctx():
    return NullContext()


def val(n: int) -> Node:
    return Node(n, NodeType.N_INT).set_int(n).seal()


class TestDefineLookup:
    def test_define_then_lookup(self, ctx):
        env = Environment()
        env.define("x", val(1), ctx)
        assert env.lookup("x", ctx).ival == 1

    def test_missing_symbol_returns_none(self, ctx):
        assert Environment().lookup("nope", ctx) is None

    def test_local_shadows_parent(self, ctx):
        parent = Environment()
        parent.define("x", val(1), ctx)
        child = parent.child()
        child.define("x", val(2), ctx)
        assert child.lookup("x", ctx).ival == 2
        assert parent.lookup("x", ctx).ival == 1

    def test_parent_chain_reachable(self, ctx):
        root = Environment()
        root.define("g", val(9), ctx)
        leaf = root.child().child().child()
        assert leaf.lookup("g", ctx).ival == 9

    def test_redefine_shadows_in_same_env(self, ctx):
        env = Environment()
        env.define("x", val(1), ctx)
        env.define("x", val(2), ctx)
        # The newest binding is found first (prepend semantics).
        assert env.lookup("x", ctx).ival == 2

    def test_lookup_local_ignores_parent(self, ctx):
        parent = Environment()
        parent.define("x", val(1), ctx)
        child = parent.child()
        assert child.lookup_local("x", ctx) is None
        assert parent.lookup_local("x", ctx).ival == 1


class TestSetNearest:
    def test_updates_local_binding(self, ctx):
        env = Environment()
        env.define("x", val(1), ctx)
        assert env.set_nearest("x", val(5), ctx) is True
        assert env.lookup("x", ctx).ival == 5

    def test_updates_nearest_not_outer(self, ctx):
        parent = Environment()
        parent.define("x", val(1), ctx)
        child = parent.child()
        child.define("x", val(2), ctx)
        child.set_nearest("x", val(7), ctx)
        assert child.lookup("x", ctx).ival == 7
        assert parent.lookup("x", ctx).ival == 1

    def test_updates_global_through_chain(self, ctx):
        root = Environment()
        root.define("x", val(1), ctx)
        leaf = root.child().child()
        leaf.set_nearest("x", val(3), ctx)
        assert root.lookup("x", ctx).ival == 3

    def test_unbound_symbol_lands_in_global(self, ctx):
        root = Environment()
        leaf = root.child().child()
        assert leaf.set_nearest("fresh", val(4), ctx) is False
        assert root.lookup_local("fresh", ctx).ival == 4


class TestStructure:
    def test_global_env_walks_to_root(self):
        root = Environment()
        leaf = root.child().child()
        assert leaf.global_env() is root
        assert root.is_global and not leaf.is_global

    def test_depth(self):
        root = Environment()
        assert root.depth() == 0
        assert root.child().child().depth() == 2

    def test_len_counts_entries(self, ctx):
        env = Environment()
        for i in range(4):
            env.define(f"v{i}", val(i), ctx)
        assert len(env) == 4

    def test_entries_are_newest_first(self, ctx):
        env = Environment()
        env.define("a", val(1), ctx)
        env.define("b", val(2), ctx)
        assert [e.symbol for e in env.entries()] == ["b", "a"]


class TestCharging:
    def test_lookup_charges_env_steps_and_char_compares(self):
        cctx = CountingContext()
        env = Environment()
        env.define("alpha", val(1), cctx)
        env.define("beta", val(2), cctx)
        cctx.reset()
        env.lookup("alpha", cctx)
        # Walks beta (1 step, cmp mismatch) then alpha (1 step, full cmp).
        assert cctx.counts.count_of(Op.ENV_STEP) == 2
        assert cctx.counts.count_of(Op.SYM_CHAR_CMP) > 0

    def test_define_charges_allocation(self):
        cctx = CountingContext()
        Environment().define("x", val(1), cctx)
        assert cctx.counts.count_of(Op.NODE_ALLOC) == 1
        assert cctx.counts.count_of(Op.NODE_WRITE) == 2
