"""Indexed root scopes + interned entry comparison + O(1) len."""

from repro.context import CountingContext, NullContext
from repro.core.environment import Environment
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.ops import Op


def node(interp, value):
    return interp.arena.new_int(value, NullContext())


class TestIndexedEnvironment:
    def test_indexed_lookup_matches_scan(self):
        interp = Interpreter()
        ctx = NullContext()
        plain = Environment(label="plain")
        indexed = Environment(label="indexed").enable_index()
        for i, name in enumerate(("alpha", "beta", "alpha")):  # shadowing
            plain.define(name, node(interp, i), ctx)
            indexed.define(name, node(interp, i), ctx)
        for name in ("alpha", "beta", "missing"):
            a = plain.lookup(name, ctx)
            b = indexed.lookup(name, ctx)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.ival == b.ival
        # newest define shadows in both representations
        assert indexed.lookup("alpha", ctx).ival == 2

    def test_enable_index_on_populated_env(self):
        interp = Interpreter()
        ctx = NullContext()
        env = Environment()
        env.define("alpha", node(interp, 1), ctx)
        env.define("alpha", node(interp, 2), ctx)  # shadows
        env.define("beta", node(interp, 3), ctx)
        env.enable_index()
        assert env.lookup("alpha", ctx).ival == 2
        assert env.lookup("beta", ctx).ival == 3

    def test_indexed_lookup_charges_probe_not_steps(self):
        interp = Interpreter()
        setup = NullContext()
        env = Environment().enable_index()
        for i in range(50):
            env.define(f"binding-{i:02d}", node(interp, i), setup)
        ctx = CountingContext()
        assert env.lookup("binding-00", ctx).ival == 0
        assert ctx.counts.count_of(Op.HASH_PROBE) == 1
        assert ctx.counts.count_of(Op.ENV_STEP) == 0
        assert ctx.counts.count_of(Op.SYM_CHAR_CMP) == 0

    def test_literal_scan_still_charges_strcmp(self):
        interp = Interpreter()
        setup = NullContext()
        env = Environment()
        env.define("alpha", node(interp, 1), setup)
        ctx = CountingContext()
        env.lookup("alpha", ctx)
        assert ctx.counts.count_of(Op.ENV_STEP) == 1
        assert ctx.counts.count_of(Op.SYM_CHAR_CMP) > 0
        assert ctx.counts.count_of(Op.SYM_CMP) == 0

    def test_interned_scan_charges_sym_cmp(self):
        interp = Interpreter()
        setup = NullContext()
        env = Environment()
        env.define("alpha", node(interp, 1), setup, sym_id=7)
        ctx = CountingContext()
        found = env.lookup("alpha", ctx, sym_id=7)
        assert found.ival == 1
        assert ctx.counts.count_of(Op.SYM_CMP) == 1
        assert ctx.counts.count_of(Op.SYM_CHAR_CMP) == 0

    def test_mixed_ids_fall_back_to_strcmp(self):
        """An uninterned query against interned entries (or vice versa)
        still matches by spelling."""
        interp = Interpreter()
        ctx = NullContext()
        env = Environment()
        env.define("alpha", node(interp, 1), ctx, sym_id=7)
        env.define("beta", node(interp, 2), ctx)  # no id
        assert env.lookup("alpha", ctx).ival == 1            # query without id
        assert env.lookup("beta", ctx, sym_id=3).ival == 2   # entry without id

    def test_set_nearest_through_index(self):
        interp = Interpreter()
        ctx = NullContext()
        root = Environment(label="root").enable_index()
        root.define("alpha", node(interp, 1), ctx)
        child = root.child()
        assert child.set_nearest("alpha", node(interp, 9), ctx) is True
        assert root.lookup("alpha", ctx).ival == 9

    def test_session_root_shadowing_with_index(self):
        """setq on a binding above an indexed session root shadows into
        the root instead of mutating the shared global."""
        interp = Interpreter(options=InterpreterOptions(indexed_roots=True))
        ctx = NullContext()
        interp.global_env.define("shared", node(interp, 1), ctx)
        session = interp.create_session_env("tenant")
        assert session.indexed
        assert session.set_nearest("shared", node(interp, 2), ctx) is False
        assert session.lookup("shared", ctx).ival == 2          # shadowed
        assert interp.global_env.lookup("shared", ctx).ival == 1  # untouched


class TestConstantTimeLen:
    def test_len_tracks_defines(self):
        interp = Interpreter()
        ctx = NullContext()
        env = Environment()
        assert len(env) == 0
        for i in range(10):
            env.define(f"name-{i}", node(interp, i), ctx)
        assert len(env) == 10
        assert len(env) == sum(1 for _ in env.entries())

    def test_len_after_clear(self):
        interp = Interpreter()
        ctx = NullContext()
        env = Environment().enable_index()
        env.define("alpha", node(interp, 1), ctx)
        env.clear()
        assert len(env) == 0
        assert env.lookup("alpha", ctx) is None
        env.define("alpha", node(interp, 2), ctx)
        assert len(env) == 1
        assert env.lookup("alpha", ctx).ival == 2

    def test_global_env_len_counts_builtins(self):
        interp = Interpreter()
        assert len(interp.global_env) == sum(
            1 for _ in interp.global_env.entries()
        )
        assert len(interp.global_env) > 50
