"""The CuLi-in-CuLi prelude library."""

import pytest

from repro.core.prelude import PRELUDE_FILENAME, install_prelude
from repro.runtime.session import CuLiSession


@pytest.fixture(scope="module")
def sess():
    session = CuLiSession("gtx480")
    assert install_prelude(session) == "prelude-loaded"
    yield session
    session.close()


class TestNumeric:
    def test_sum_product_mean(self, sess):
        assert sess.eval("(sum (list 1 2 3 4))") == "10"
        assert sess.eval("(product (list 1 2 3 4))") == "24"
        assert sess.eval("(mean (list 2 4 6))") == "4"

    def test_gcd_lcm(self, sess):
        assert sess.eval("(gcd2 12 18)") == "6"
        assert sess.eval("(gcd2 17 5)") == "1"
        assert sess.eval("(lcm2 4 6)") == "12"

    def test_fact(self, sess):
        assert sess.eval("(fact 6)") == "720"
        assert sess.eval("(fact 0)") == "1"

    def test_fib_matches_paper_workload(self, sess):
        assert sess.eval("(fib 5)") == "5"
        assert sess.eval("(||| 4 fib (5 5 5 5))") == "(5 5 5 5)"


class TestLists:
    def test_take_drop(self, sess):
        assert sess.eval("(take 2 (list 1 2 3 4))") == "(1 2)"
        assert sess.eval("(take 9 (list 1))") == "(1)"
        assert sess.eval("(drop 2 (list 1 2 3 4))") == "(3 4)"

    def test_range(self, sess):
        assert sess.eval("(range 4)") == "(0 1 2 3)"

    def test_flatten(self, sess):
        assert sess.eval("(flatten (list 1 (list 2 (list 3)) 4))") == "(1 2 3 4)"
        assert sess.eval("(flatten nil)") == "nil"

    def test_zip(self, sess):
        assert sess.eval("(zip (list 1 2) (list 'a 'b))") == "((1 a) (2 b))"
        assert sess.eval("(zip (list 1 2 3) (list 'a))") == "((1 a))"

    def test_assoc_set(self, sess):
        sess.eval("(setq tbl (list (list 'x 1) (list 'y 2)))")
        assert sess.eval("(assoc 'x (assoc-set 'x 9 tbl))") == "(x 9)"
        assert sess.eval("(assoc 'y (assoc-set 'x 9 tbl))") == "(y 2)"

    def test_quantifiers(self, sess):
        assert sess.eval("(all-p 'evenp (list 2 4 6))") == "T"
        assert sess.eval("(all-p 'evenp (list 2 3))") == "nil"
        assert sess.eval("(any-p 'oddp (list 2 3))") == "T"
        assert sess.eval("(any-p 'oddp (list 2 4))") == "nil"

    def test_caddr(self, sess):
        assert sess.eval("(caddr (list 1 2 3 4))") == "3"


class TestMacros:
    def test_incf_decf(self, sess):
        sess.eval("(setq counter 10)")
        sess.eval("(incf counter)")
        sess.eval("(incf counter)")
        sess.eval("(decf counter)")
        assert sess.eval("counter") == "11"


class TestLoadMechanism:
    def test_prelude_arrives_as_file(self, sess):
        assert sess.eval(f'(file-exists? "{PRELUDE_FILENAME}")') == "T"

    def test_works_on_cpu_device(self):
        with CuLiSession("intel") as cpu:
            assert install_prelude(cpu) == "prelude-loaded"
            assert cpu.eval("(sum (range 5))") == "10"
