"""Device-side output builtins (print / princ / terpri)."""


class TestPrint:
    def test_print_returns_value(self, run):
        # print's value (20) flows into the addition; its side output
        # ("\n20 ") lands in the same device buffer before the result.
        assert run("(+ (print 20) 22)").endswith("42")

    def test_print_emits_into_output(self, run):
        assert run("(+ (print 20) 22)") == "\n20 42"

    def test_print_output_appears_in_buffer(self, interp, ctx):
        out = interp.process("(progn (print 7) 'done)", ctx)
        assert "7" in out and out.endswith("done")

    def test_print_readable_strings(self, interp, ctx):
        out = interp.process('(progn (print "hi") 0)', ctx)
        assert '"hi"' in out


class TestPrinc:
    def test_princ_raw_strings(self, interp, ctx):
        out = interp.process('(progn (princ "hi") 0)', ctx)
        assert "hi" in out
        assert '"hi"' not in out.replace(out.split()[-1], "")

    def test_princ_returns_value(self, run):
        assert run('(princ 5)') == "55"  # princ writes 5, result prints 5


class TestTerpri:
    def test_terpri_newline(self, interp, ctx):
        out = interp.process("(progn (princ 1) (terpri) (princ 2) 'ok)", ctx)
        assert "1\n2" in out

    def test_terpri_returns_nil(self, run):
        assert run("(progn (terpri))").strip() == "nil"
