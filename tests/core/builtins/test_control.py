"""Control-flow builtins (unevaluated-argument special forms)."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestQuote:
    def test_quote_prevents_evaluation(self, run):
        assert run("(quote (+ 1 2))") == "(+ 1 2)"

    def test_quote_sugar(self, run):
        assert run("'(+ 1 2)") == "(+ 1 2)"
        assert run("'x") == "x"

    def test_quoted_symbol_not_looked_up(self, run):
        run("(setq x 5)")
        assert run("'x") == "x"


class TestIf:
    def test_then_branch(self, run):
        assert run("(if (> 2 1) 'yes 'no)") == "yes"

    def test_else_branch(self, run):
        assert run("(if (< 2 1) 'yes 'no)") == "no"

    def test_missing_else_is_nil(self, run):
        assert run("(if nil 'yes)") == "nil"

    def test_only_taken_branch_evaluated(self, run):
        run("(setq hits 0)")
        run("(if T 1 (setq hits 1))")
        assert run("hits") == "0"

    def test_empty_list_condition_is_false(self, run):
        assert run("(if '() 'yes 'no)") == "no"

    def test_zero_condition_is_true(self, run):
        assert run("(if 0 'yes 'no)") == "yes"


class TestCond:
    def test_first_truthy_clause(self, run):
        assert run("(cond ((< 3 1) 'a) ((> 3 1) 'b) (T 'c))") == "b"

    def test_fallthrough_default(self, run):
        assert run("(cond (nil 'a) (T 'default))") == "default"

    def test_no_match_is_nil(self, run):
        assert run("(cond (nil 'a))") == "nil"

    def test_test_value_returned_without_body(self, run):
        assert run("(cond ((+ 1 1)))") == "2"

    def test_clause_body_sequence(self, run):
        run("(setq x 0)")
        assert run("(cond (T (setq x 1) (setq x 2) 'done))") == "done"
        assert run("x") == "2"

    def test_malformed_clause(self, run):
        with pytest.raises(EvalError):
            run("(cond 5)")


class TestWhenUnless:
    def test_when_true(self, run):
        assert run("(when (> 2 1) 1 2 3)") == "3"

    def test_when_false(self, run):
        assert run("(when nil 1)") == "nil"

    def test_unless(self, run):
        assert run("(unless nil 'ran)") == "ran"
        assert run("(unless T 'ran)") == "nil"


class TestProgn:
    def test_returns_last(self, run):
        assert run("(progn 1 2 3)") == "3"

    def test_empty_progn(self, run):
        assert run("(progn)") == "nil"

    def test_sequences_side_effects(self, run):
        assert run("(progn (setq a 1) (setq a (+ a 1)) a)") == "2"


class TestWhile:
    def test_counts(self, run):
        run("(setq i 0)")
        run("(while (< i 5) (setq i (+ i 1)))")
        assert run("i") == "5"

    def test_returns_nil(self, run):
        run("(setq i 0)")
        assert run("(while (< i 1) (setq i 1))") == "nil"

    def test_false_condition_skips_body(self, run):
        run("(setq touched nil)")
        run("(while nil (setq touched T))")
        assert run("touched") == "nil"

    def test_runaway_loop_aborts(self, interp, ctx):
        interp.options.max_loop_iterations = 100
        with pytest.raises(EvalError, match="livelock"):
            interp.process("(while T 1)", ctx)


class TestDotimes:
    def test_sums(self, run):
        run("(setq total 0)")
        run("(dotimes (i 5) (setq total (+ total i)))")
        assert run("total") == "10"

    def test_zero_iterations(self, run):
        run("(setq hits 0)")
        run("(dotimes (i 0) (setq hits 1))")
        assert run("hits") == "0"

    def test_var_is_loop_local(self, run):
        run("(setq i 99)")
        run("(dotimes (i 3) i)")
        assert run("i") == "99"

    def test_malformed_spec(self, run):
        with pytest.raises(TypeMismatchError):
            run("(dotimes i 1)")
