"""Transcendental math builtins."""

import math

import pytest

from repro.errors import EvalError


class TestUnary:
    @pytest.mark.parametrize(
        "expr,value",
        [
            ("(sin 0)", 0.0),
            ("(cos 0)", 1.0),
            ("(tan 0)", 0.0),
            ("(exp 0)", 1.0),
            ("(exp 1)", math.e),
            ("(log 1)", 0.0),
            ("(log2 8)", 3.0),
            ("(log10 1000)", 3.0),
            ("(tanh 0)", 0.0),
            ("(atan 0)", 0.0),
        ],
    )
    def test_values(self, run, expr, value):
        assert float(run(expr)) == pytest.approx(value)

    def test_results_are_floats(self, run):
        assert "." in run("(cos 0)") or "e" in run("(cos 0)")

    def test_domain_error(self, run):
        with pytest.raises(EvalError):
            run("(log 0)")
        with pytest.raises(EvalError):
            run("(asin 2)")


class TestBinary:
    def test_atan2(self, run):
        assert float(run("(atan2 1 1)")) == pytest.approx(math.pi / 4)

    def test_pi_constant(self, run):
        assert float(run("(pi)")) == pytest.approx(math.pi)

    def test_trig_identity(self, run):
        out = run("(+ (* (sin 1) (sin 1)) (* (cos 1) (cos 1)))")
        assert float(out) == pytest.approx(1.0)
