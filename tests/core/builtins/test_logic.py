"""Short-circuit logic builtins."""


class TestAnd:
    def test_all_truthy_returns_last(self, run):
        assert run("(and 1 2 3)") == "3"

    def test_nil_short_circuits(self, run):
        assert run("(and 1 nil 3)") == "nil"

    def test_empty_and_is_true(self, run):
        assert run("(and)") == "T"

    def test_side_effects_stop_at_nil(self, run):
        run("(setq hits 0)")
        run("(and nil (setq hits 1))")
        assert run("hits") == "0"


class TestOr:
    def test_first_truthy_wins(self, run):
        assert run("(or nil 2 3)") == "2"

    def test_all_nil(self, run):
        assert run("(or nil nil)") == "nil"

    def test_empty_or_is_nil(self, run):
        assert run("(or)") == "nil"

    def test_short_circuit_skips_rest(self, run):
        run("(setq hits 0)")
        run("(or 1 (setq hits 1))")
        assert run("hits") == "0"


class TestNot:
    def test_not_nil(self, run):
        assert run("(not nil)") == "T"

    def test_not_value(self, run):
        assert run("(not 5)") == "nil"

    def test_zero_is_truthy(self, run):
        # Lisp: 0 is true — only nil (and the empty list) is false.
        assert run("(not 0)") == "nil"

    def test_empty_list_is_falsy(self, run):
        assert run("(not '())") == "T"
