"""Arithmetic builtins."""

import pytest

from repro.errors import ArityError, EvalError, TypeMismatchError


class TestAdd:
    def test_basic(self, run):
        assert run("(+ 1 2 3)") == "6"

    def test_identity(self, run):
        assert run("(+)") == "0"

    def test_mixed_promotes_to_float(self, run):
        assert run("(+ 1 0.5)") == "1.5"

    def test_nested(self, run):
        assert run("(+ (+ 1 2) (+ 3 4))") == "10"

    def test_type_error(self, run):
        with pytest.raises(TypeMismatchError):
            run('(+ 1 "two")')


class TestSub:
    def test_binary(self, run):
        assert run("(- 10 3)") == "7"

    def test_chain(self, run):
        assert run("(- 10 3 2)") == "5"

    def test_unary_negates(self, run):
        assert run("(- 4)") == "-4"

    def test_requires_one_arg(self, run):
        with pytest.raises(ArityError):
            run("(-)")


class TestMul:
    def test_basic(self, run):
        assert run("(* 2 3 4)") == "24"

    def test_identity(self, run):
        assert run("(*)") == "1"

    def test_paper_example(self, run):
        assert run("(* 2 (+ 4 3) 6)") == "84"


class TestDiv:
    def test_exact_integer(self, run):
        assert run("(/ 12 4)") == "3"

    def test_inexact_promotes(self, run):
        assert run("(/ 7 2)") == "3.5"

    def test_float(self, run):
        assert run("(/ 1.0 4)") == "0.25"

    def test_chain(self, run):
        assert run("(/ 24 2 3)") == "4"

    def test_reciprocal(self, run):
        assert run("(/ 4)") == "0.25"

    def test_zero_division(self, run):
        with pytest.raises(EvalError, match="zero"):
            run("(/ 5 0)")


class TestModRem:
    def test_mod_sign_follows_divisor(self, run):
        assert run("(mod 7 3)") == "1"
        assert run("(mod -7 3)") == "2"

    def test_rem_sign_follows_dividend(self, run):
        assert run("(rem 7 3)") == "1"
        assert run("(rem -7 3)") == "-1"

    def test_mod_zero(self, run):
        with pytest.raises(EvalError):
            run("(mod 5 0)")


class TestMisc:
    def test_abs(self, run):
        assert run("(abs -5)") == "5"
        assert run("(abs 5)") == "5"

    def test_min_max(self, run):
        assert run("(min 3 1 2)") == "1"
        assert run("(max 3 1 2)") == "3"

    def test_inc_dec(self, run):
        assert run("(1+ 41)") == "42"
        assert run("(1- 43)") == "42"

    def test_expt(self, run):
        assert run("(expt 2 10)") == "1024"
        assert run("(expt 4 0.5)") == "2.0"

    def test_sqrt_is_float(self, run):
        assert run("(sqrt 9)") == "3.0"

    def test_sqrt_negative_rejected(self, run):
        with pytest.raises(EvalError):
            run("(sqrt -1)")

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(floor 2.7)", "2"),
            ("(ceiling 2.1)", "3"),
            ("(truncate -2.7)", "-2"),
            ("(round 2.5)", "2"),  # banker's rounding
            ("(round 3.5)", "4"),
        ],
    )
    def test_rounding(self, run, expr, expected):
        assert run(expr) == expected
