"""String builtins (built on the device string library)."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestStringOps:
    def test_append(self, run):
        assert run('(string-append "foo" "bar")') == '"foobar"'

    def test_append_empty(self, run):
        assert run("(string-append)") == '""'

    def test_length(self, run):
        assert run('(string-length "hello")') == "5"
        assert run('(string-length "")') == "0"

    def test_substring(self, run):
        assert run('(substring "hello" 1 3)') == '"el"'

    def test_substring_to_end(self, run):
        assert run('(substring "hello" 2)') == '"llo"'

    def test_substring_bad_range(self, run):
        with pytest.raises(EvalError):
            run('(substring "abc" 2 1)')
        with pytest.raises(EvalError):
            run('(substring "abc" 0 9)')

    def test_equality(self, run):
        assert run('(string= "ab" "ab")') == "T"
        assert run('(string= "ab" "aB")') == "nil"

    def test_ordering(self, run):
        assert run('(string< "abc" "abd")') == "T"
        assert run('(string< "b" "a")') == "nil"

    def test_case_conversion(self, run):
        assert run('(string-upcase "MiXeD")') == '"MIXED"'
        assert run('(string-downcase "MiXeD")') == '"mixed"'

    def test_type_errors(self, run):
        with pytest.raises(TypeMismatchError):
            run("(string-length 5)")


class TestConversions:
    def test_symbol_name(self, run):
        assert run("(symbol-name 'foo)") == '"foo"'

    def test_symbol_name_rejects_non_symbol(self, run):
        with pytest.raises(TypeMismatchError):
            run('(symbol-name "already-a-string")')

    def test_number_to_string(self, run):
        assert run("(number-to-string 42)") == '"42"'
        assert run("(number-to-string 2.5)") == '"2.5"'

    def test_string_to_number(self, run):
        assert run('(string-to-number "42")') == "42"
        assert run('(string-to-number "2.5")') == "2.5"

    def test_string_to_number_failure_is_nil(self, run):
        assert run('(string-to-number "abc")') == "nil"

    def test_roundtrip(self, run):
        assert run('(string-to-number (number-to-string 123))') == "123"
