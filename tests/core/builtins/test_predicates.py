"""Type and value predicates."""

import pytest

from repro.errors import TypeMismatchError


class TestTypePredicates:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(atom 5)", "T"),
            ("(atom 'sym)", "T"),
            ("(atom (list 1))", "nil"),
            ("(atom '())", "T"),  # empty list is an atom in Lisp
            ("(null nil)", "T"),
            ("(null '())", "T"),
            ("(null 0)", "nil"),
            ("(listp (list 1 2))", "T"),
            ("(listp nil)", "T"),
            ("(listp 5)", "nil"),
            ("(consp (list 1))", "T"),
            ("(consp '())", "nil"),
            ("(consp 'x)", "nil"),
            ("(numberp 3)", "T"),
            ("(numberp 3.5)", "T"),
            ('(numberp "3")', "nil"),
            ("(integerp 3)", "T"),
            ("(integerp 3.0)", "nil"),
            ("(floatp 3.0)", "T"),
            ("(floatp 3)", "nil"),
            ("(symbolp 'abc)", "T"),
            ("(symbolp 1)", "nil"),
            ('(stringp "s")', "T"),
            ("(stringp 's)", "nil"),
            ("(functionp 'car)", "nil"),  # the quoted symbol, not the fn
        ],
    )
    def test_predicate(self, run, expr, expected):
        assert run(expr) == expected

    def test_functionp_on_function_value(self, run):
        assert run("(functionp +)") == "T"
        run("(defun f (x) x)")
        assert run("(functionp f)") == "T"
        assert run("(functionp (lambda (x) x))") == "T"


class TestNumericPredicates:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("(zerop 0)", "T"),
            ("(zerop 0.0)", "T"),
            ("(zerop 1)", "nil"),
            ("(plusp 2)", "T"),
            ("(plusp -2)", "nil"),
            ("(minusp -2)", "T"),
            ("(minusp 2)", "nil"),
            ("(evenp 4)", "T"),
            ("(evenp 3)", "nil"),
            ("(oddp 3)", "T"),
            ("(oddp 4)", "nil"),
        ],
    )
    def test_predicate(self, run, expr, expected):
        assert run(expr) == expected

    def test_evenp_requires_integer(self, run):
        with pytest.raises(TypeMismatchError):
            run("(evenp 2.5)")

    def test_zerop_requires_number(self, run):
        with pytest.raises(TypeMismatchError):
            run("(zerop 'x)")
