"""defun / lambda / let / setq and application utilities."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestDefun:
    def test_returns_name_symbol(self, run):
        assert run("(defun f (x) x)") == "f"

    def test_lands_in_global_env(self, run):
        # Defined inside a let, still visible globally afterwards.
        run("(let ((unused 0)) (defun g (x) (* 2 x)))")
        assert run("(g 21)") == "42"

    def test_redefinition_shadows(self, run):
        run("(defun h (x) 1)")
        run("(defun h (x) 2)")
        assert run("(h 0)") == "2"

    def test_no_parameters(self, run):
        run("(defun always-5 () 5)")
        assert run("(always-5)") == "5"

    def test_name_must_be_symbol(self, run):
        with pytest.raises(TypeMismatchError):
            run("(defun 5 (x) x)")

    def test_params_must_be_symbols(self, run):
        with pytest.raises(TypeMismatchError):
            run("(defun f (1) 1)")


class TestLambda:
    def test_value_is_callable(self, run):
        run("(setq sq (lambda (x) (* x x)))")
        assert run("(funcall sq 8)") == "64"

    def test_immediate_application(self, run):
        assert run("((lambda (a b) (+ a b)) 3 4)") == "7"


class TestLet:
    def test_basic_binding(self, run):
        assert run("(let ((x 2) (y 3)) (* x y))") == "6"

    def test_parallel_semantics(self, run):
        run("(setq x 10)")
        # In plain let, y's init sees the OUTER x.
        assert run("(let ((x 1) (y x)) y)") == "10"

    def test_let_star_sequential(self, run):
        run("(setq x 10)")
        assert run("(let* ((x 1) (y x)) y)") == "1"

    def test_symbol_only_binding_is_nil(self, run):
        assert run("(let ((a)) a)") == "nil"
        assert run("(let (b) b)") == "nil"

    def test_body_sequence(self, run):
        assert run("(let ((x 1)) (setq x 2) x)") == "2"

    def test_bindings_are_scoped(self, run):
        run("(let ((local-only 5)) local-only)")
        assert run("local-only") == "local-only"  # unbound outside

    def test_malformed_bindings(self, run):
        with pytest.raises(TypeMismatchError):
            run("(let 5 1)")


class TestSetq:
    def test_defines_global(self, run):
        run("(setq v 42)")
        assert run("v") == "42"

    def test_returns_value(self, run):
        assert run("(setq v 7)") == "7"

    def test_pairs(self, run):
        assert run("(setq a 1 b 2)") == "2"
        assert run("(+ a b)") == "3"

    def test_updates_nearest(self, run):
        # The paper: "setq updates the nearest existing symbol ... it can
        # change a local variable as well as a global one."
        run("(setq x 1)")
        assert run("(let ((x 10)) (setq x 20) x)") == "20"
        assert run("x") == "1"

    def test_updates_global_from_inside_let(self, run):
        run("(setq y 1)")
        run("(let ((z 0)) (setq y 99))")
        assert run("y") == "99"

    def test_odd_arguments_rejected(self, run):
        with pytest.raises(EvalError):
            run("(setq a)")

    def test_target_must_be_symbol(self, run):
        with pytest.raises(TypeMismatchError):
            run("(setq 5 1)")


class TestApplication:
    def test_eval_builtin(self, run):
        assert run("(eval '(+ 1 2))") == "3"

    def test_eval_through_variable(self, run):
        run("(setq program '(* 6 7))")
        assert run("(eval program)") == "42"

    def test_funcall_with_lambda_value(self, run):
        assert run("(funcall (lambda (x) (+ x 1)) 9)") == "10"

    def test_apply_arity_enforced(self, run):
        run("(defun two (a b) (+ a b))")
        with pytest.raises(EvalError):
            run("(apply 'two (list 1 2 3))")
