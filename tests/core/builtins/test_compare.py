"""Comparison and equality builtins."""

import pytest

from repro.errors import TypeMismatchError


class TestNumericChains:
    def test_equal_chain(self, run):
        assert run("(= 2 2 2)") == "T"
        assert run("(= 2 2 3)") == "nil"

    def test_lt_chain(self, run):
        assert run("(< 1 2 3)") == "T"
        assert run("(< 1 3 2)") == "nil"

    def test_le_ge(self, run):
        assert run("(<= 1 1 2)") == "T"
        assert run(">= 1") != ""  # symbol prints as itself, no crash
        assert run("(>= 3 3 2)") == "T"

    def test_gt(self, run):
        assert run("(> 3 2 1)") == "T"

    def test_mixed_int_float(self, run):
        assert run("(= 2 2.0)") == "T"
        assert run("(< 1 1.5 2)") == "T"

    def test_ne_pairwise(self, run):
        assert run("(/= 1 2 3)") == "T"
        assert run("(/= 1 2 1)") == "nil"

    def test_single_arg_is_true(self, run):
        assert run("(= 5)") == "T"
        assert run("(< 5)") == "T"

    def test_non_number_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run('(< 1 "2")')


class TestEq:
    def test_same_value_nodes_not_eq(self, run):
        # Two separately constructed 5s are different nodes.
        assert run("(eq 5 5)") == "nil"

    def test_same_binding_is_eq(self, run):
        run("(setq x (list 1))")
        assert run("(eq x x)") == "T"

    def test_nil_eq_nil(self, run):
        assert run("(eq nil nil)") == "T"
        assert run("(eq T T)") == "T"


class TestEql:
    def test_numbers_same_type(self, run):
        assert run("(eql 5 5)") == "T"
        assert run("(eql 5.0 5.0)") == "T"

    def test_numbers_different_type(self, run):
        assert run("(eql 5 5.0)") == "nil"

    def test_symbols(self, run):
        assert run("(eql 'a 'a)") == "T"
        assert run("(eql 'a 'b)") == "nil"


class TestEqual:
    def test_lists_structural(self, run):
        assert run("(equal (list 1 2 (list 3)) (list 1 2 (list 3)))") == "T"
        assert run("(equal (list 1 2) (list 1 2 3))") == "nil"

    def test_numbers_cross_type(self, run):
        assert run("(equal 5 5.0)") == "T"

    def test_strings(self, run):
        assert run('(equal "ab" "ab")') == "T"
        assert run('(equal "ab" "ac")') == "nil"

    def test_empty_list_vs_nil(self, run):
        assert run("(equal nil nil)") == "T"
