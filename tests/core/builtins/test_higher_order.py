"""Higher-order list builtins (mapcar / reduce / sort / ...)."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestMapcar:
    def test_single_list(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(mapcar 'sq (list 1 2 3))") == "(1 4 9)"

    def test_builtin_function(self, run):
        assert run("(mapcar '1+ (list 1 2 3))") == "(2 3 4)"

    def test_lambda(self, run):
        assert run("(mapcar (lambda (x) (* 2 x)) (list 1 2))") == "(2 4)"

    def test_multiple_lists(self, run):
        assert run("(mapcar '+ (list 1 2 3) (list 10 20 30))") == "(11 22 33)"

    def test_stops_at_shortest(self, run):
        assert run("(mapcar '+ (list 1 2 3) (list 10 20))") == "(11 22)"

    def test_empty_list(self, run):
        assert run("(mapcar '1+ nil)") == "()"

    def test_non_function_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(mapcar 5 (list 1))")


class TestReduce:
    def test_fold(self, run):
        assert run("(reduce '+ (list 1 2 3 4))") == "10"

    def test_initial_value(self, run):
        assert run("(reduce '+ (list 1 2 3) 100)") == "106"

    def test_left_associativity(self, run):
        assert run("(reduce '- (list 10 1 2))") == "7"  # (10-1)-2

    def test_single_element(self, run):
        assert run("(reduce '+ (list 5))") == "5"

    def test_empty_with_initial(self, run):
        assert run("(reduce '+ nil 42)") == "42"

    def test_empty_without_initial_rejected(self, run):
        with pytest.raises(EvalError):
            run("(reduce '+ nil)")

    def test_compose_with_parallel(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(reduce '+ (||| 4 sq (1 2 3 4)))") == "30"


class TestFilters:
    def test_remove_if(self, run):
        assert run("(remove-if 'evenp (list 1 2 3 4 5))") == "(1 3 5)"

    def test_remove_if_keeps_all(self, run):
        assert run("(remove-if 'evenp (list 1 3))") == "(1 3)"

    def test_find_if(self, run):
        assert run("(find-if 'evenp (list 1 3 4 5))") == "4"
        assert run("(find-if 'evenp (list 1 3 5))") == "nil"

    def test_count_if(self, run):
        assert run("(count-if 'oddp (list 1 2 3 4 5))") == "3"


class TestSort:
    def test_numbers_default_order(self, run):
        assert run("(sort (list 3 1 2))") == "(1 2 3)"

    def test_custom_predicate(self, run):
        assert run("(sort (list 3 1 2) '>)") == "(3 2 1)"

    def test_strings(self, run):
        assert run('(sort (list "b" "a" "c"))') == '("a" "b" "c")'

    def test_stability(self, run):
        # Ints equal under the predicate keep their relative order:
        # sort by (mod x 10); 12 before 2 must stay 12 2.
        run("(defun mod10< (a b) (< (mod a 10) (mod b 10)))")
        assert run("(sort (list 12 2 11 1) 'mod10<)") == "(11 1 12 2)"

    def test_empty_and_single(self, run):
        assert run("(sort nil)") == "()"
        assert run("(sort (list 1))") == "(1)"

    def test_original_unchanged(self, run):
        run("(setq data (list 3 1 2))")
        run("(sort data)")
        assert run("data") == "(3 1 2)"

    def test_mixed_types_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run('(sort (list 1 "a"))')


class TestStructural:
    def test_nthcdr(self, run):
        assert run("(nthcdr 2 (list 1 2 3 4))") == "(3 4)"
        assert run("(nthcdr 0 (list 1))") == "(1)"
        assert run("(nthcdr 9 (list 1))") == "nil"

    def test_subst(self, run):
        assert run("(subst 0 'x '(a x (b x)))") == "(a 0 (b 0))"

    def test_subst_numbers(self, run):
        assert run("(subst 99 2 (list 1 2 (list 2 3)))") == "(1 99 (99 3))"

    def test_iota(self, run):
        assert run("(iota 4)") == "(0 1 2 3)"
        assert run("(iota 3 10)") == "(10 11 12)"
        assert run("(iota 3 0 5)") == "(0 5 10)"
        assert run("(iota 0)") == "()"

    def test_iota_feeds_parallel(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(||| 4 sq (iota 4 1))") == "(1 4 9 16)"
