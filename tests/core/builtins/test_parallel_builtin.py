"""The |||/gpu-map/preduce builtins (engine-independent: sequential engine)."""

import pytest

from repro.errors import ArityError, EvalError, TypeMismatchError


class TestPaperExample:
    def test_three_workers_add(self, run):
        # Paper §III-D: (||| 3 + (1 2 3) (4 5 6)) -> workers compute
        # (+ 1 4), (+ 2 5), (+ 3 6).
        assert run("(||| 3 + (1 2 3) (4 5 6))") == "(5 7 9)"

    def test_results_in_distribution_order(self, run):
        assert run("(||| 4 - (10 20 30 40) (1 2 3 4))") == "(9 18 27 36)"

    def test_user_form(self, run):
        run("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        assert run("(||| 4 fib (5 5 5 5))") == "(5 5 5 5)"

    def test_single_worker(self, run):
        assert run("(||| 1 + (7) (8))") == "(15)"

    def test_single_list(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(||| 3 sq (2 3 4))") == "(4 9 16)"

    def test_lambda_distributed(self, run):
        run("(setq dbl (lambda (x) (* 2 x)))")
        assert run("(||| 2 dbl (5 6))") == "(10 12)"

    def test_computed_arguments(self, run):
        run("(setq data (list 1 2 3))")
        assert run("(||| 3 + data data)") == "(2 4 6)"


class TestSurplusElements:
    """n is the explicit worker count (§III-D), so lists longer than n
    contribute exactly their first n elements — pinned here so gpu-map
    (which consumes *all* elements, erroring on ragged input) cannot
    inherit any ambiguity from |||."""

    def test_lists_longer_than_n_use_prefix(self, run):
        assert run("(||| 2 + (1 2 3 4) (10 20 30 40))") == "(11 22)"

    def test_surplus_in_one_list_only_is_also_truncated(self, run):
        assert run("(||| 2 + (1 2) (10 20 30 40))") == "(11 22)"

    def test_surplus_elements_are_never_evaluated_as_jobs(self, run):
        # Exactly n results come back, whatever the list lengths.
        assert run("(||| 1 - (9 8 7) (4 3 2))") == "(5)"

    def test_computed_list_surplus_truncated(self, run):
        run("(setq data (list 1 2 3 4 5))")
        assert run("(||| 3 * data data)") == "(1 4 9)"


class TestWorkerEnvironment:
    def test_workers_see_global_bindings(self, run):
        run("(setq scale 10)")
        run("(defun scaled (x) (* scale x))")
        assert run("(||| 2 scaled (1 2))") == "(10 20)"

    def test_workers_see_call_site_env(self, run):
        # "The root of this subtree is linked to the environment of the
        # |||-expression" — call-site lets are visible.
        run("(defun use-k (x) (+ x k))")
        assert run("(let ((k 100)) (||| 2 use-k (1 2)))") == "(101 102)"


class TestValidation:
    def test_zero_threads_rejected(self, run):
        with pytest.raises(EvalError, match="positive"):
            run("(||| 0 + (1) (2))")

    def test_no_argument_lists_rejected(self, run):
        # (||| 3 +) used to slip past min arity 2 and dispatch three
        # empty rows to the engine; rejected at arity now (ArityError
        # is an EvalError).
        with pytest.raises(ArityError, match="at least 3"):
            run("(||| 3 +)")

    def test_no_argument_lists_rejected_for_n_1(self, run):
        with pytest.raises(ArityError, match="at least 3"):
            run("(||| 1 +)")

    def test_empty_list_rejected(self, run):
        # An empty argument list cannot feed even one worker.
        with pytest.raises(EvalError, match="fewer than"):
            run("(||| 3 + ())")

    def test_empty_list_rejected_for_n_1(self, run):
        with pytest.raises(EvalError, match="fewer than"):
            run("(||| 1 + ())")

    def test_n_1_with_one_element_still_works(self, run):
        assert run("(||| 1 + (41) (1))") == "(42)"

    def test_non_integer_threads(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 1.5 + (1) (2))")

    def test_short_list_rejected(self, run):
        with pytest.raises(EvalError, match="fewer than"):
            run("(||| 3 + (1 2) (4 5 6))")

    def test_non_function_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 2 42 (1 2))")

    def test_non_list_argument_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 2 + 5)")

    def test_macro_rejected(self, run):
        run("(defmacro m (x) x)")
        with pytest.raises(TypeMismatchError, match="macro"):
            run("(||| 1 m (1))")


class TestGpuMap:
    """(gpu-map fn list...) — whole-list mapping through the engine."""

    def test_maps_every_element(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(gpu-map sq (1 2 3 4 5))") == "(1 4 9 16 25)"

    def test_two_lists_rowwise(self, run):
        assert run("(gpu-map + (1 2 3) (10 20 30))") == "(11 22 33)"

    def test_matches_mapcar(self, run):
        run("(defun f (x) (+ (* x x) 1))")
        assert run("(gpu-map f (iota 20))") == run("(mapcar f (iota 20))")

    def test_empty_list_maps_to_empty(self, run):
        assert run("(gpu-map + ())") == run("(mapcar + ())")

    def test_single_element(self, run):
        assert run("(gpu-map - (7) (3))") == "(4)"

    def test_lambda(self, run):
        assert run("(gpu-map (lambda (x) (* 2 x)) (5 6 7))") == "(10 12 14)"

    def test_more_jobs_than_any_worker_count(self, run):
        # 200 rows: the engines run multiple distribution rounds.
        assert run("(gpu-map (lambda (x) x) (iota 200))") == run("(iota 200)")

    def test_sees_call_site_env(self, run):
        run("(defun use-k (x) (+ x k))")
        assert run("(let ((k 100)) (gpu-map use-k (1 2)))") == "(101 102)"

    def test_ragged_lists_rejected(self, run):
        # No worker count to truncate to: consuming all elements is the
        # contract, so unequal lengths are an error, never a silent slice.
        with pytest.raises(EvalError, match="equal length"):
            run("(gpu-map + (1 2 3) (10 20))")

    def test_ragged_first_list_longer_rejected(self, run):
        with pytest.raises(EvalError, match="equal length"):
            run("(gpu-map + (1 2) (10 20 30))")

    def test_non_function_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(gpu-map 42 (1 2))")

    def test_non_list_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(gpu-map + 5)")

    def test_macro_rejected(self, run):
        run("(defmacro m (x) x)")
        with pytest.raises(TypeMismatchError, match="macro"):
            run("(gpu-map m (1))")

    def test_no_lists_rejected(self, run):
        with pytest.raises(ArityError, match="at least 2"):
            run("(gpu-map +)")


class TestPreduce:
    """(preduce fn list [init]) — parallel tree reduction."""

    def test_sum(self, run):
        assert run("(preduce + (1 2 3 4 5 6 7 8))") == "36"

    def test_matches_sequential_reduce_for_associative_fn(self, run):
        assert run("(preduce + (iota 100))") == run("(reduce + (iota 100))")
        assert run("(preduce * (1 2 3 4 5 6))") == run("(reduce * (1 2 3 4 5 6))")

    def test_odd_length(self, run):
        assert run("(preduce + (1 2 3 4 5))") == "15"

    def test_single_element(self, run):
        assert run("(preduce + (42))") == "42"

    def test_initial_value(self, run):
        assert run("(preduce + (1 2 3) 100)") == "106"

    def test_empty_with_init(self, run):
        assert run("(preduce + () 7)") == "7"

    def test_empty_without_init_rejected(self, run):
        with pytest.raises(EvalError, match="empty"):
            run("(preduce + ())")

    def test_user_function(self, run):
        run("(defun pick-max (a b) (if (< a b) b a))")
        assert run("(preduce pick-max (3 1 4 1 5 9 2 6))") == "9"

    def test_macro_rejected(self, run):
        run("(defmacro m (a b) a)")
        with pytest.raises(TypeMismatchError, match="macro"):
            run("(preduce m (1 2))")
