"""The ||| builtin's semantics (engine-independent: sequential engine)."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestPaperExample:
    def test_three_workers_add(self, run):
        # Paper §III-D: (||| 3 + (1 2 3) (4 5 6)) -> workers compute
        # (+ 1 4), (+ 2 5), (+ 3 6).
        assert run("(||| 3 + (1 2 3) (4 5 6))") == "(5 7 9)"

    def test_results_in_distribution_order(self, run):
        assert run("(||| 4 - (10 20 30 40) (1 2 3 4))") == "(9 18 27 36)"

    def test_user_form(self, run):
        run("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        assert run("(||| 4 fib (5 5 5 5))") == "(5 5 5 5)"

    def test_single_worker(self, run):
        assert run("(||| 1 + (7) (8))") == "(15)"

    def test_single_list(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(||| 3 sq (2 3 4))") == "(4 9 16)"

    def test_lambda_distributed(self, run):
        run("(setq dbl (lambda (x) (* 2 x)))")
        assert run("(||| 2 dbl (5 6))") == "(10 12)"

    def test_lists_longer_than_n_use_prefix(self, run):
        assert run("(||| 2 + (1 2 3 4) (10 20 30 40))") == "(11 22)"

    def test_computed_arguments(self, run):
        run("(setq data (list 1 2 3))")
        assert run("(||| 3 + data data)") == "(2 4 6)"


class TestWorkerEnvironment:
    def test_workers_see_global_bindings(self, run):
        run("(setq scale 10)")
        run("(defun scaled (x) (* scale x))")
        assert run("(||| 2 scaled (1 2))") == "(10 20)"

    def test_workers_see_call_site_env(self, run):
        # "The root of this subtree is linked to the environment of the
        # |||-expression" — call-site lets are visible.
        run("(defun use-k (x) (+ x k))")
        assert run("(let ((k 100)) (||| 2 use-k (1 2)))") == "(101 102)"


class TestValidation:
    def test_zero_threads_rejected(self, run):
        with pytest.raises(EvalError, match="positive"):
            run("(||| 0 + (1) (2))")

    def test_non_integer_threads(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 1.5 + (1) (2))")

    def test_short_list_rejected(self, run):
        with pytest.raises(EvalError, match="fewer than"):
            run("(||| 3 + (1 2) (4 5 6))")

    def test_non_function_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 2 42 (1 2))")

    def test_non_list_argument_rejected(self, run):
        with pytest.raises(TypeMismatchError):
            run("(||| 2 + 5)")

    def test_macro_rejected(self, run):
        run("(defmacro m (x) x)")
        with pytest.raises(TypeMismatchError, match="macro"):
            run("(||| 1 m (1))")
