"""Introspection builtins."""


class TestTypeOf:
    def test_types(self, run):
        assert run("(type-of 5)") == "integer"
        assert run("(type-of 5.0)") == "float"
        assert run('(type-of "s")') == "string"
        assert run("(type-of 'x)") == "symbol"
        assert run("(type-of (list 1))") == "list"
        assert run("(type-of nil)") == "nil"
        assert run("(type-of +)") == "function"

    def test_form_type(self, run):
        run("(defun f (x) x)")
        assert run("(type-of f)") == "form"


class TestRoom:
    def test_reports_usage(self, run):
        out = run("(room)")
        assert "nodes used" in out
        assert "peak" in out


class TestBuiltinCount:
    def test_positive(self, run):
        count = int(run("(builtin-count)"))
        assert count >= 80  # the dialect ships a substantial library
