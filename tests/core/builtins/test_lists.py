"""List builtins: the car/cdr family on CuLi's node chains."""

import pytest

from repro.errors import EvalError, TypeMismatchError


class TestCarCdr:
    def test_car(self, run):
        assert run("(car (list 1 2 3))") == "1"

    def test_car_of_nil(self, run):
        assert run("(car nil)") == "nil"
        assert run("(car '())") == "nil"

    def test_cdr(self, run):
        assert run("(cdr (list 1 2 3))") == "(2 3)"

    def test_cdr_of_single(self, run):
        assert run("(cdr (list 1))") == "nil"

    def test_cdr_of_nil(self, run):
        assert run("(cdr nil)") == "nil"

    def test_car_cdr_compose(self, run):
        assert run("(car (cdr (cdr (list 1 2 3 4))))") == "3"

    def test_cdr_view_shares_structure_safely(self, run):
        run("(setq l (list 1 2 3))")
        assert run("(cdr l)") == "(2 3)"
        assert run("l") == "(1 2 3)"  # original untouched

    def test_accessor_shorthands(self, run):
        run("(setq l (list 1 2 3 4))")
        assert run("(first l)") == "1"
        assert run("(rest l)") == "(2 3 4)"
        assert run("(second l)") == "2"
        assert run("(third l)") == "3"
        assert run("(cadr l)") == "2"
        assert run("(cddr l)") == "(3 4)"

    def test_caar_cdar(self, run):
        run("(setq l (list (list 1 2) 3))")
        assert run("(caar l)") == "1"
        assert run("(cdar l)") == "(2)"


class TestCons:
    def test_cons_onto_list(self, run):
        assert run("(cons 0 (list 1 2))") == "(0 1 2)"

    def test_cons_onto_nil(self, run):
        assert run("(cons 1 nil)") == "(1)"

    def test_cons_does_not_mutate_tail(self, run):
        run("(setq tail (list 2 3))")
        assert run("(cons 1 tail)") == "(1 2 3)"
        assert run("tail") == "(2 3)"

    def test_no_dotted_pairs(self, run):
        with pytest.raises(TypeMismatchError, match="pairs"):
            run("(cons 1 2)")


class TestConstruction:
    def test_list(self, run):
        assert run("(list 1 (+ 1 1) 3)") == "(1 2 3)"

    def test_empty_list_builtin(self, run):
        assert run("(list)") == "()"

    def test_append(self, run):
        assert run("(append (list 1 2) (list 3) (list 4 5))") == "(1 2 3 4 5)"

    def test_append_empty(self, run):
        assert run("(append)") == "nil"
        assert run("(append nil (list 1))") == "(1)"
        assert run("(append (list 1) nil)") == "(1)"

    def test_append_shares_final_list(self, run):
        run("(setq tail (list 9))")
        assert run("(append (list 1) tail)") == "(1 9)"
        assert run("tail") == "(9)"

    def test_append_rejects_non_list(self, run):
        with pytest.raises(TypeMismatchError):
            run("(append (list 1) 5)")

    def test_reverse(self, run):
        assert run("(reverse (list 1 2 3))") == "(3 2 1)"
        assert run("(reverse nil)") == "()"


class TestQueries:
    def test_length(self, run):
        assert run("(length (list 1 2 3))") == "3"
        assert run("(length nil)") == "0"

    def test_length_of_string(self, run):
        assert run('(length "abcd")') == "4"

    def test_nth(self, run):
        run("(setq l (list 10 20 30))")
        assert run("(nth 0 l)") == "10"
        assert run("(nth 2 l)") == "30"
        assert run("(nth 9 l)") == "nil"

    def test_nth_negative_rejected(self, run):
        with pytest.raises(EvalError):
            run("(nth -1 (list 1))")

    def test_last_is_constant_time_pointer(self, run):
        assert run("(last (list 1 2 3))") == "3"
        assert run("(last nil)") == "nil"

    def test_member(self, run):
        assert run("(member 2 (list 1 2 3))") == "(2 3)"
        assert run("(member 9 (list 1 2 3))") == "nil"

    def test_member_uses_structural_equality(self, run):
        assert run("(member (list 2) (list (list 1) (list 2)))") == "((2))"

    def test_assoc(self, run):
        run("(setq table (list (list 'a 1) (list 'b 2)))")
        assert run("(assoc 'b table)") == "(b 2)"
        assert run("(assoc 'z table)") == "nil"
