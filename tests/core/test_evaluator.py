"""The recursive evaluator (paper §III-B-c)."""

import pytest

from repro.context import NullContext
from repro.errors import ArityError, EvalError, RecursionDepthError


class TestSelfEvaluation:
    def test_numbers(self, run):
        assert run("42") == "42"
        assert run("2.5") == "2.5"

    def test_strings(self, run):
        assert run('"abc"') == '"abc"'

    def test_nil_t(self, run):
        assert run("nil") == "nil"
        assert run("T") == "T"


class TestSymbols:
    def test_bound_symbol_replaced(self, run):
        run("(setq x 10)")
        assert run("x") == "10"

    def test_unbound_symbol_stays(self, run):
        # Late binding: "If there is no matching symbol, the symbol is
        # not replaced."
        assert run("mystery") == "mystery"

    def test_first_occurrence_wins(self, run):
        run("(setq x 1)")
        assert run("(let ((x 2)) x)") == "2"
        assert run("x") == "1"


class TestListEvaluation:
    def test_empty_list_is_nil(self, run):
        assert run("(())") == "(nil)"  # inner () evaluates to nil

    def test_non_call_list_evaluates_elementwise(self, run):
        run("(setq a 5)")
        assert run("(a 1 2)") == "(5 1 2)"

    def test_literal_number_list(self, run):
        assert run("(1 2 3)") == "(1 2 3)"

    def test_nested_call_inside_data_list(self, run):
        assert run("((+ 1 2) 9)") == "(3 9)"

    def test_expression_with_builtin(self, run):
        assert run("(* 2 (+ 4 3) 6)") == "84"  # the paper's own example


class TestForms:
    def test_defun_and_call(self, run):
        run("(defun add3 (a b c) (+ a b c))")
        assert run("(add3 1 2 3)") == "6"

    def test_recursion(self, run):
        run("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        assert run("(fib 10)") == "55"

    def test_fifth_fibonacci_paper_workload(self, run):
        run("(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
        assert run("(fib 5)") == "5"

    def test_multi_form_body_returns_last(self, run):
        run("(defun f (x) (+ x 1) (* x 10))")
        assert run("(f 4)") == "40"

    def test_arity_error(self, run):
        run("(defun g (a b) (+ a b))")
        with pytest.raises(ArityError):
            run("(g 1)")
        with pytest.raises(ArityError):
            run("(g 1 2 3)")

    def test_lambda_applied_in_head_position(self, run):
        assert run("((lambda (x) (* x x)) 7)") == "49"

    def test_parameters_shadow_globals(self, run):
        run("(setq n 100)")
        run("(defun twice (n) (* 2 n))")
        assert run("(twice 3)") == "6"
        assert run("n") == "100"

    def test_dynamic_scoping(self, run):
        # The form's environment chains to the CALL SITE (see DESIGN.md):
        # a free variable in the body sees the caller's binding.
        run("(defun get-free () free)")
        assert run("(let ((free 42)) (get-free))") == "42"

    def test_empty_body_rejected_at_definition(self, run):
        # Caught by the arity contract (defun needs name, params, body).
        with pytest.raises(EvalError):
            run("(defun bad (x))")


class TestRecursionLimit:
    def test_depth_guard(self, interp):
        ctx = NullContext(max_depth=64)
        interp.process("(defun loop-forever (n) (loop-forever (+ n 1)))", ctx)
        with pytest.raises(RecursionDepthError):
            interp.process("(loop-forever 0)", ctx)

    def test_shallow_recursion_fits(self, interp):
        ctx = NullContext(max_depth=512)
        interp.process(
            "(defun count-down (n) (if (< n 1) 0 (count-down (- n 1))))", ctx
        )
        assert interp.process("(count-down 20)", ctx) == "0"


class TestApplyCallable:
    def test_funcall_builtin(self, run):
        assert run("(funcall '+ 1 2 3)") == "6"

    def test_funcall_form(self, run):
        run("(defun sq (x) (* x x))")
        assert run("(funcall 'sq 6)") == "36"

    def test_apply_with_list(self, run):
        assert run("(apply '+ (list 1 2 3 4))") == "10"

    def test_apply_noncallable_rejected(self, run):
        with pytest.raises(EvalError):
            run("(funcall 5 1)")


class TestCopyOnLink:
    def test_shared_value_in_two_lists(self, run):
        """Appending one env-bound value into several result lists must
        not corrupt any list's sibling chain."""
        run("(setq v 9)")
        assert run("(list v v v)") == "(9 9 9)"
        assert run("(list 1 v 2)") == "(1 9 2)"
        assert run("v") == "9"

    def test_nil_singleton_survives_linking(self, run):
        assert run("(list nil nil)") == "(nil nil)"
        assert run("nil") == "nil"
