"""The result printer (paper §III-B-d)."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.nodes import NodeType
from repro.core.printer import Printer
from repro.core.reader import Parser
from repro.gpu.memory import OutputBuffer
from repro.ops import Op


@pytest.fixture
def show(interp, ctx):
    def _show(source, readable=True):
        parsed = Parser(interp, ctx).parse(source)
        printer = Printer(ctx)
        return " ".join(printer.to_string(n, readable=readable) for n in parsed)

    return _show


class TestPrimitives:
    def test_integers(self, show):
        assert show("42") == "42"
        assert show("-7") == "-7"

    def test_floats_keep_a_marker(self, show):
        assert show("2.5") == "2.5"
        assert show("2.0") == "2.0"  # never prints as bare '2'

    def test_nil_and_t(self, show):
        assert show("nil") == "nil"
        assert show("T") == "T"

    def test_symbols(self, show):
        assert show("foo") == "foo"

    def test_strings_readable_vs_princ(self, show):
        assert show('"hi"') == '"hi"'
        assert show('"hi"', readable=False) == "hi"


class TestLists:
    def test_flat(self, show):
        assert show("(1 2 3)") == "(1 2 3)"

    def test_nested(self, show):
        assert show("(1 (2 (3)) 4)") == "(1 (2 (3)) 4)"

    def test_empty(self, show):
        assert show("()") == "()"

    def test_mixed_types(self, show):
        assert show('(x 1 2.5 "s" nil)') == '(x 1 2.5 "s" nil)'


class TestCallables:
    def test_builtin_rendering(self, run):
        assert run("+").startswith("#<builtin")

    def test_form_rendering(self, run):
        run("(defun f (x) x)")
        assert run("f") == "#<form f>"

    def test_lambda_rendering(self, run):
        assert run("(lambda (x) x)") == "#<form lambda>"

    def test_macro_rendering(self, run):
        run("(defmacro m (x) x)")
        assert run("m") == "#<macro m>"


class TestCharging:
    def test_chars_are_charged(self, interp):
        cctx = CountingContext()
        node = interp.arena.new_int(12345, cctx)
        out = OutputBuffer()
        out.bind(cctx)
        Printer(cctx).print_node(node, out)
        assert out.getvalue() == "12345"
        assert cctx.counts.count_of(Op.CHAR_STORE) == 5
        assert cctx.counts.count_of(Op.PRINT_STEP) == 5
        # itoa: one integer division per digit
        assert cctx.counts.count_of(Op.IDIV) == 5

    def test_deep_lists_print_iteratively(self, interp):
        # 10k-deep nesting must not hit Python's recursion limit.
        ctx = NullContext()
        node = interp.arena.new_int(1, ctx)
        for _ in range(10_000):
            lst = interp.arena.alloc(NodeType.N_LIST, ctx)
            lst.append_child(node)
            node = lst.seal()
        text = Printer(ctx).to_string(node)
        assert text == "(" * 10_000 + "1" + ")" * 10_000
