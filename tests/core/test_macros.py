"""Macros (the paper: "Our system supports ... macros")."""

import pytest

from repro.errors import ArityError


class TestDefmacro:
    def test_definition_returns_name(self, run):
        assert run("(defmacro noop (x) x)") == "noop"

    def test_expansion_is_evaluated(self, run):
        run("(defmacro add1 (x) (list '+ x 1))")
        assert run("(add1 41)") == "42"

    def test_macro_sees_unevaluated_args(self, run):
        # The macro receives the FORM (f 1), not its value.
        run("(defmacro head-symbol (form) (list 'quote (car form)))")
        assert run("(head-symbol (undefined-fn 1 2))") == "undefined-fn"

    def test_double_evaluation_side_effect(self, run):
        run("(setq counter 0)")
        run("(defmacro twice (x) (list 'progn x x))")
        run("(twice (setq counter (+ counter 1)))")
        assert run("counter") == "2"

    def test_arity_checked(self, run):
        run("(defmacro m2 (a b) (list '+ a b))")
        with pytest.raises(ArityError):
            run("(m2 1)")


class TestMacroexpand:
    def test_macroexpand_1_shows_expansion(self, run):
        run("(defmacro add1 (x) (list '+ x 1))")
        assert run("(macroexpand-1 '(add1 5))") == "(+ 5 1)"

    def test_macroexpand_1_of_non_macro_is_identity(self, run):
        assert run("(macroexpand-1 '(+ 1 2))") == "(+ 1 2)"
        assert run("(macroexpand-1 '7)") == "7"


class TestMacroComposition:
    def test_macro_generating_defun(self, run):
        run(
            "(defmacro defsquare (name) "
            "  (list 'defun name '(x) '(* x x)))"
        )
        run("(defsquare mysq)")
        assert run("(mysq 12)") == "144"

    def test_when_like_macro(self, run):
        run("(defmacro mywhen (test body) (list 'if test body 'nil))")
        assert run("(mywhen (> 3 1) 99)") == "99"
        assert run("(mywhen (< 3 1) 99)") == "nil"
