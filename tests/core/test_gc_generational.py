"""Generational region GC (DESIGN.md deviation #7): nursery regions,
promotion write barriers, minor/major policy, and root dedup."""

import pytest

from repro.context import CountingContext, NullContext
from repro.core.arena import NodeArena
from repro.core.gc import collect_major, gather_roots
from repro.core.interpreter import Interpreter, InterpreterOptions
from repro.core.nodes import (
    REGION_FREE,
    REGION_TENURED,
    NodeType,
    promote_subgraph,
)
from repro.ops import Op


@pytest.fixture
def gen():
    return Interpreter(options=InterpreterOptions(gc_policy="generational"))


def run(interp, src):
    return interp.process(src, NullContext())


class TestRegions:
    def test_begin_and_reset(self):
        ctx = NullContext()
        arena = NodeArena(capacity=16)
        setup = arena.alloc(NodeType.N_INT, ctx)
        assert setup.region == REGION_TENURED
        rid = arena.begin_region()
        assert rid > REGION_TENURED
        nursery = [arena.alloc(NodeType.N_INT, ctx) for _ in range(3)]
        assert all(node.region == rid for node in nursery)
        freed, promoted = arena.reset_region()
        assert (freed, promoted) == (3, 0)
        assert not arena.region_active
        assert all(node.region == REGION_FREE for node in nursery)
        assert setup.region == REGION_TENURED
        assert arena.used == 1

    def test_begin_is_idempotent_within_a_batch(self):
        arena = NodeArena(capacity=8)
        rid = arena.begin_region()
        assert arena.begin_region() == rid

    def test_promoted_nodes_survive_reset(self):
        ctx = NullContext()
        arena = NodeArena(capacity=16)
        arena.begin_region()
        keep = arena.alloc(NodeType.N_INT, ctx)
        dies = arena.alloc(NodeType.N_INT, ctx)
        promote_subgraph(keep)
        freed, promoted = arena.reset_region()
        assert (freed, promoted) == (1, 1)
        assert keep.region == REGION_TENURED
        assert dies.region == REGION_FREE

    def test_promote_subgraph_walks_structure(self):
        ctx = NullContext()
        arena = NodeArena(capacity=16)
        arena.begin_region()
        lst = arena.alloc(NodeType.N_LIST, ctx)
        a = arena.alloc(NodeType.N_INT, ctx).seal()
        b = arena.alloc(NodeType.N_INT, ctx).seal()
        lst.append_child(a).append_child(b).seal()
        assert promote_subgraph(lst) == 3
        assert a.region == b.region == REGION_TENURED

    def test_link_barrier_promotes_child_under_tenured_tail(self):
        ctx = NullContext()
        arena = NodeArena(capacity=16)
        tenured = arena.alloc(NodeType.N_LIST, ctx)  # setup: tenured
        arena.begin_region()
        child = arena.alloc(NodeType.N_INT, ctx).seal()
        tenured.append_child(child)
        assert child.region == REGION_TENURED
        freed, _ = arena.reset_region()
        assert freed == 0


class TestGenerationalInterpreter:
    def test_temporaries_reclaimed_defuns_survive(self, gen):
        run(gen, "(defun sq (x) (* x x))")
        gen.collect_garbage()
        settled = gen.arena.used
        for _ in range(5):
            assert run(gen, "(sq 9)") == "81"
            freed = gen.collect_garbage()
            assert freed > 0
            assert gen.arena.used == settled
        assert gen.gc_stats.minor_collections == 6
        assert gen.gc_stats.major_collections == 0

    def test_pure_reset_when_nothing_escapes(self, gen):
        gen.collect_garbage()  # drop setup-command leftovers
        before = gen.gc_stats.pure_resets
        run(gen, "(+ 1 2 (* 3 4))")
        gen.collect_garbage()
        assert gen.gc_stats.pure_resets == before + 1

    def test_setq_value_survives_minor_collection(self, gen):
        run(gen, "(setq stash (list 1 2 3))")
        gen.collect_garbage()
        assert run(gen, "stash") == "(1 2 3)"

    def test_cons_shared_tail_with_tenured_head_survives(self, gen):
        """Regression: cons shares its tail chain by rewiring the head's
        sibling pointer. A previously-defined (tenured, never-linked)
        head is reused as-is, so that write is a tenured->nursery edge
        that must promote the tail before the region resets."""
        run(gen, "(setq x (+ 2 3))")
        gen.collect_garbage()
        run(gen, "(setq y (cons x (list 1 2)))")
        gen.collect_garbage()
        assert run(gen, "y") == "(5 1 2)"
        gen.collect_garbage()
        assert run(gen, "y") == "(5 1 2)"

    def test_setq_rebinding_promotes_new_value(self, gen):
        run(gen, "(setq stash 1)")
        gen.collect_garbage()
        run(gen, "(setq stash (list 4 5 6))")
        gen.collect_garbage()
        assert run(gen, "stash") == "(4 5 6)"

    def test_minor_collection_charges_o1_when_pure(self, gen):
        run(gen, "(+ 1 2 (* 3 4))")
        gctx = CountingContext()
        gen.collect_garbage(gctx)
        # One bump-pointer reset, no per-node work, no marking.
        assert gctx.counts.count_of(Op.NODE_WRITE) == 1
        assert gctx.counts.count_of(Op.NODE_READ) == 0

    def test_minor_collection_cost_scales_with_survivors_not_heap(self, gen):
        # Grow the tenured heap, then measure a no-escape command's cost.
        for i in range(64):
            run(gen, f"(defun helper-{i} (x) (+ x {i}))")
            gen.collect_garbage()
        run(gen, "(helper-3 4)")
        gctx = CountingContext()
        gen.collect_garbage(gctx)
        assert gctx.counts.total_count() == 1  # still the O(1) reset

    def test_pressure_triggers_major_collection(self):
        interp = Interpreter(
            options=InterpreterOptions(
                gc_policy="generational",
                arena_capacity=2048,
                gc_major_watermark=0.05,
            )
        )
        run(interp, "(setq junk (list 1 2 3 4 5 6 7 8))")
        interp.collect_garbage()
        # Re-binding makes the old tenured list garbage; only the
        # watermark-triggered major can reclaim it.
        run(interp, "(setq junk 1)")
        interp.collect_garbage()
        assert interp.gc_stats.major_collections >= 1
        assert run(interp, "junk") == "1"

    def test_explicit_collect_without_region_is_major(self, gen):
        env = gen.create_session_env()
        run_env = lambda src: gen.process(src, NullContext(), env=env)
        run_env("(setq big (list 1 2 3 4 5))")
        gen.collect_garbage()
        gen.release_session_env(env)
        freed = gen.collect_garbage()  # no open region -> full sweep
        assert freed > 0
        assert gen.gc_stats.major_collections >= 1

    def test_collect_major_is_oracle_noop_after_minor(self, gen):
        run(gen, "(defun keep (x) x)")
        gen.collect_garbage()
        # The fallback full sweep finds nothing the minor path missed.
        assert collect_major(gen) == 0

    def test_literal_mode_never_opens_a_region(self):
        interp = Interpreter()  # gc_policy="literal"
        run(interp, "(defun sq (x) (* x x))")
        interp.collect_garbage()
        run(interp, "(sq 5)")
        interp.collect_garbage()
        assert not interp.arena.region_active
        assert interp.gc_stats.minor_collections == 0
        assert interp.arena.current_region == REGION_TENURED

    def test_literal_collection_is_uncharged(self):
        interp = Interpreter()
        run(interp, "(list 1 2 3)")
        gctx = CountingContext()
        interp.collect_garbage(gctx)
        assert gctx.counts.total_count() == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="gc_policy"):
            Interpreter(options=InterpreterOptions(gc_policy="bogus"))


class TestRootDedup:
    def test_shared_parent_scopes_visited_once(self):
        interp = Interpreter()
        n_global = len(interp.global_env)
        envs = [interp.create_session_env(f"t{i}") for i in range(8)]
        ctx = NullContext()
        for env in envs:
            env.define("private", interp.arena.new_int(1, ctx), ctx)
        roots = gather_roots(interp)
        # global scope contributes once, not once per session.
        assert len(roots) == n_global + len(envs) + 2  # + nil/true

    def test_dedup_does_not_lose_tenant_bindings(self):
        interp = Interpreter()
        a = interp.create_session_env("a")
        b = interp.create_session_env("b")
        run_a = lambda src: interp.process(src, NullContext(), env=a)
        run_b = lambda src: interp.process(src, NullContext(), env=b)
        run_a("(setq mine (list 1 2))")
        run_b("(setq mine (list 3 4))")
        interp.collect_garbage()
        assert run_a("mine") == "(1 2)"
        assert run_b("mine") == "(3 4)"


class TestEpochMarking:
    def test_major_sweep_never_hashes_nodes(self, monkeypatch):
        interp = Interpreter()
        run(interp, "(list 1 2 3)")
        monkeypatch.setattr(
            "repro.core.nodes.Node.__hash__",
            lambda self: pytest.fail("sweep hashed a node"),
        )
        interp.collect_garbage()

    def test_epoch_advances_per_major(self):
        interp = Interpreter()
        e0 = interp.arena._epoch
        interp.collect_garbage()
        interp.collect_garbage()
        assert interp.arena._epoch == e0 + 2
